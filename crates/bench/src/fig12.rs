//! The Fig. 12 experiment: mean queueing delay vs load for nine schedulers.

use lcf_sim::config::{ModelKind, SimConfig};
use lcf_sim::runner::{sweep, SimReport};

/// One measured point of a Fig. 12 curve.
#[derive(Clone, Debug)]
pub struct Fig12Point {
    /// Curve (model) name.
    pub model: String,
    /// Offered load.
    pub load: f64,
    /// Mean queueing delay in slots (Fig. 12a's y-axis).
    pub latency: f64,
    /// Latency relative to `outbuf` at the same load (Fig. 12b's y-axis).
    pub relative: f64,
    /// Delivered throughput fraction.
    pub throughput: f64,
}

/// The load grid used for the figure. The paper plots 0..1; queues are
/// finite so load 1.0 is included (latency saturates at the buffer bound).
pub fn load_grid() -> Vec<f64> {
    vec![
        0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.75, 0.8, 0.85, 0.9, 0.925, 0.95, 0.975, 0.99,
    ]
}

/// A shorter grid for `--quick` runs.
pub fn quick_load_grid() -> Vec<f64> {
    vec![0.3, 0.6, 0.8, 0.9, 0.95, 0.99]
}

/// Builds the full config matrix (models × loads) with Fig. 12 parameters.
pub fn configs(loads: &[f64], quick: bool, seed: u64) -> Vec<SimConfig> {
    let base = SimConfig::paper_default();
    let (warmup, measure) = if quick {
        (5_000, 20_000)
    } else {
        (50_000, 200_000)
    };
    let mut out = Vec::new();
    for model in ModelKind::figure12_lineup() {
        for &load in loads {
            out.push(SimConfig {
                model,
                load,
                warmup_slots: warmup,
                measure_slots: measure,
                seed: seed ^ (load * 1000.0) as u64,
                ..base.clone()
            });
        }
    }
    out
}

/// Runs the experiment and joins each curve against the `outbuf` reference
/// to produce the Fig. 12b relative series.
pub fn run(loads: &[f64], quick: bool, seed: u64) -> Vec<Fig12Point> {
    let configs = configs(loads, quick, seed);
    let reports = sweep(&configs);
    relativize(&reports)
}

/// Computes relative latencies against the `outbuf` curve.
pub fn relativize(reports: &[SimReport]) -> Vec<Fig12Point> {
    let outbuf_latency = |load: f64| -> f64 {
        reports
            .iter()
            .find(|r| r.model == "outbuf" && (r.load - load).abs() < 1e-9)
            .map(|r| r.mean_latency())
            .unwrap_or(f64::NAN)
    };
    reports
        .iter()
        .map(|r| {
            let base = outbuf_latency(r.load);
            Fig12Point {
                model: r.model.clone(),
                load: r.load,
                latency: r.mean_latency(),
                relative: if base > 0.0 {
                    r.mean_latency() / base
                } else {
                    f64::NAN
                },
                throughput: r.throughput,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_are_sorted_and_in_range() {
        for grid in [load_grid(), quick_load_grid()] {
            assert!(grid.windows(2).all(|w| w[0] < w[1]));
            assert!(grid.iter().all(|&l| (0.0..=1.0).contains(&l)));
        }
    }

    #[test]
    fn configs_cover_all_models_and_loads() {
        let loads = [0.5, 0.9];
        let cfgs = configs(&loads, true, 1);
        assert_eq!(cfgs.len(), 9 * 2);
        assert!(cfgs
            .iter()
            .all(|c| c.n == 16 && c.voq_cap == 256 && c.pq_cap == 1000));
    }

    #[test]
    fn relativize_uses_outbuf_baseline() {
        use lcf_sim::runner::SimReport;
        let mk = |model: &str, load: f64, lat: f64| SimReport {
            model: model.into(),
            load,
            n: 16,
            slots: 1,
            generated: 1,
            delivered: 1,
            dropped: 0,
            mean_latency_slots: lat,
            latency_std_dev: 0.0,
            p50_latency: 0,
            p99_latency: 0,
            throughput: load,
            jain_index: 1.0,
            seed: 0,
            backend: "scalar".into(),
        };
        let reports = vec![mk("outbuf", 0.5, 2.0), mk("islip", 0.5, 3.0)];
        let points = relativize(&reports);
        let islip = points.iter().find(|p| p.model == "islip").unwrap();
        assert!((islip.relative - 1.5).abs() < 1e-12);
    }
}
