//! Communication-cost model (Fig. 10 and Sec. 6.2, "Communication Cost").
//!
//! The central scheduler exchanges, per scheduling cycle:
//!
//! * `req(n)` bits from each of the `n` requesters, and
//! * `gnt(log₂n) + vld(1)` bits back to each —
//!
//! a total of `n · (n + log₂n + 1)` bits. The distributed scheduler must
//! ship its priorities explicitly on every iteration: per matrix position,
//! `req(1) + nrq(log₂n)` forward, `gnt(1) + ngt(log₂n)` back and `acc(1)`
//! forward again — `i · n² · (2·log₂n + 3)` bits for `i` iterations.

use crate::log2_ceil;

/// Bits exchanged per scheduling cycle by the central organization:
/// `n(n + log₂n + 1)`.
pub fn central_bits(n: usize) -> usize {
    n * (n + log2_ceil(n) + 1)
}

/// Bits exchanged per scheduling cycle by the distributed organization with
/// `iterations` iterations: `i·n²(2·log₂n + 3)`.
pub fn distributed_bits(n: usize, iterations: usize) -> usize {
    iterations * n * n * (2 * log2_ceil(n) + 3)
}

/// Ratio of distributed to central communication volume.
pub fn overhead_ratio(n: usize, iterations: usize) -> f64 {
    distributed_bits(n, iterations) as f64 / central_bits(n) as f64
}

/// One row of the Fig. 10 comparison for a port count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommRow {
    /// Port count.
    pub n: usize,
    /// Central bits per cycle.
    pub central: usize,
    /// Distributed bits per cycle.
    pub distributed: usize,
    /// distributed / central.
    pub ratio: f64,
}

/// Builds the comparison over a port-count sweep.
pub fn comparison(ns: &[usize], iterations: usize) -> Vec<CommRow> {
    ns.iter()
        .map(|&n| CommRow {
            n,
            central: central_bits(n),
            distributed: distributed_bits(n, iterations),
            ratio: overhead_ratio(n, iterations),
        })
        .collect()
}

/// Per-message field widths of the central scheduler (Fig. 10a), for
/// documentation/tests: `(request_bits, grant_bits, valid_bits)`.
pub fn central_message_fields(n: usize) -> (usize, usize, usize) {
    (n, log2_ceil(n), 1)
}

/// Per-position field widths of the distributed scheduler (Fig. 10b):
/// `(req, nrq, gnt, ngt, acc)`.
pub fn distributed_message_fields(n: usize) -> (usize, usize, usize, usize, usize) {
    let g = log2_ceil(n);
    (1, g, 1, g, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn central_formula_at_16() {
        // n(n + log2 n + 1) = 16 * (16 + 4 + 1) = 336.
        assert_eq!(central_bits(16), 336);
    }

    #[test]
    fn distributed_formula_at_16() {
        // i n^2 (2 log2 n + 3) = 4 * 256 * 11 = 11264.
        assert_eq!(distributed_bits(16, 4), 11264);
    }

    #[test]
    fn fields_sum_to_totals() {
        for n in [4usize, 16, 64] {
            let (req, gnt, vld) = central_message_fields(n);
            assert_eq!(n * (req + gnt + vld), central_bits(n));
            let (r, nrq, g, ngt, a) = distributed_message_fields(n);
            assert_eq!(
                3 * n * n * (r + nrq + g + ngt + a) / 3,
                distributed_bits(n, 1) // per-iteration total
            );
        }
    }

    #[test]
    fn distributed_is_significantly_more_expensive() {
        // The paper: "the distributed scheduler has significantly higher
        // communication demands".
        for n in [8usize, 16, 64, 256] {
            assert!(overhead_ratio(n, 4) > 10.0, "n={n}");
        }
    }

    #[test]
    fn ratio_grows_with_iterations() {
        assert!(overhead_ratio(16, 8) > overhead_ratio(16, 4));
        assert!((overhead_ratio(16, 8) / overhead_ratio(16, 4) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn comparison_rows() {
        let rows = comparison(&[4, 16], 4);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].n, 16);
        assert_eq!(rows[1].central, 336);
        assert_eq!(rows[1].distributed, 11264);
    }
}
