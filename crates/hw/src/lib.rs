//! # lcf-hw — analytic hardware cost models for the LCF scheduler
//!
//! The paper evaluates its FPGA implementation along three axes; each gets a
//! module here:
//!
//! * [`gates`] — gate and register counts of the central LCF scheduler's
//!   structure (Fig. 6), reproducing **Table 1** at `n = 16` and scaling the
//!   same structure to other port counts.
//! * [`timing`] — clock-cycle counts of the scheduling tasks, reproducing
//!   **Table 2** (`2n+1` cycles precalculated-schedule check, `3n+2` cycles
//!   LCF calculation, 66 MHz clock).
//! * [`comm`] — scheduling-message bit counts for the central and
//!   distributed organizations (**Fig. 10**): `n(n + log₂n + 1)` vs
//!   `i·n²(2·log₂n + 3)`.
//!
//! These are *models*, not a synthesis flow: the paper's own numbers are
//! structural counts of the Fig. 6 block diagram, and the models here count
//! the same components, calibrated so `n = 16` matches the paper exactly
//! (see `DESIGN.md`, "Substitutions").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comm;
pub mod gates;
pub mod rtl;
pub mod timing;

/// `⌈log₂ n⌉` — the width of an encoded port number.
///
/// Defined as 0 for `n <= 1` (a 1-port switch needs no port field).
pub fn log2_ceil(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        usize::BITS as usize - (n - 1).leading_zeros() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(0), 0);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(16), 4);
        assert_eq!(log2_ceil(17), 5);
        assert_eq!(log2_ceil(1024), 10);
    }
}
