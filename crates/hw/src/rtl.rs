//! Register-transfer-level model of the central LCF scheduler hardware
//! (Sec. 4.2, Fig. 6).
//!
//! This is the paper's implementation, modelled at the register/bus level:
//!
//! * **NRQ** — an `n`-bit shift register holding the requester's
//!   outstanding request count in *inverse unary* encoding (`k` requests =
//!   `1…1 0^k`); decrementing is a single shift.
//! * **Open-collector bus** — requesters drive the complement of NRQ onto a
//!   wired-AND bus; after settling, the bus carries the *minimum* count.
//!   Each requester compares its driven value with the sampled bus to set
//!   its `CP` (comparison) flag.
//! * **PRIO** — a per-requester unique rotating priority in the same
//!   encoding; a second bus phase among the `CP` requesters implements the
//!   programmable priority encoder that breaks ties. The requester holding
//!   the highest priority participates in this phase *regardless of its
//!   request count*, which is how the hardware realizes the round-robin
//!   position "for free".
//! * **RES** — the central resource pointer, incremented per step (and one
//!   extra time every `n` cycles, rotating the resource scan order).
//!
//! [`RtlScheduler::schedule`] is verified bit-for-bit equivalent to the
//! behavioral [`CentralLcf`](lcf_core::lcf::CentralLcf) (round-robin
//! flavor) in this module's tests, and its cycle counter reproduces the
//! `3n + 2` cycles of Table 2.

use lcf_core::matching::Matching;
use lcf_core::request::RequestMatrix;

/// The state of one requester slice (the logic placed next to each input
/// port in Fig. 6).
#[derive(Clone, Debug)]
struct Slice {
    /// Request register `R[i, 0..n-1]`.
    r: Vec<bool>,
    /// NRQ shift register, inverse unary: `k` requests = `1…1 0^k`,
    /// i.e. `nrq[j]` is false for `j < k`.
    nrq: Vec<bool>,
    /// PRIO shift register: unique priority in inverse unary encoding
    /// (`p` = number of leading false bits; 0 = highest priority).
    prio: Vec<bool>,
    /// NGT: set while the requester has not yet been granted a resource.
    ngt: bool,
    /// CP: set when this requester won the NRQ bus comparison.
    cp: bool,
    /// GNT: the granted resource.
    gnt: Option<usize>,
}

impl Slice {
    fn new(n: usize, priority: usize) -> Self {
        Slice {
            r: vec![false; n],
            nrq: vec![true; n],
            // PRIO is shifted *before* each resource is scheduled, so the
            // construction-time value is one ahead of the first step's.
            prio: unary(n, (priority + 1) % n),
            ngt: true,
            cp: false,
            gnt: None,
        }
    }

    /// Cyclic PRIO rotation: priority decreases by one, the top priority
    /// wraps to the bottom ("Priorities are rotated every scheduling
    /// cycle").
    fn rotate_prio(&mut self) {
        let n = self.prio.len();
        let p = Slice::count(&self.prio);
        Slice::load(&mut self.prio, (p + n - 1) % n);
    }

    /// Count encoded in an inverse-unary register (number of low zeros).
    fn count(reg: &[bool]) -> usize {
        reg.iter().take_while(|&&b| !b).count()
    }

    /// Loads `k` into an inverse-unary register.
    fn load(reg: &mut [bool], k: usize) {
        for (j, bit) in reg.iter_mut().enumerate() {
            *bit = j >= k;
        }
    }

    /// Decrement by one: shift a `true` in from the left (the paper's
    /// single-shift decrement).
    fn shift_decrement(reg: &mut Vec<bool>) {
        if !reg.is_empty() && !reg[0] {
            reg.remove(0);
            reg.push(true);
        }
    }
}

/// Builds an inverse-unary vector with `k` low zeros.
fn unary(n: usize, k: usize) -> Vec<bool> {
    let mut v = vec![true; n];
    for bit in v.iter_mut().take(k) {
        *bit = false;
    }
    v
}

/// The wired-AND open-collector bus: every participant drives the
/// complement of an inverse-unary register; the settled bus is the bitwise
/// AND, whose population count is the *minimum* driven count.
fn wired_and_bus(n: usize, drivers: impl Iterator<Item = usize>) -> Vec<bool> {
    // Driving the complement of `1…1 0^k` is `0…0 1^k`; AND of `1^k`
    // prefixes keeps the shortest prefix, i.e. the minimum k... expressed
    // directly: bus bit j is 1 iff every driver has bit j set.
    let mut bus = vec![true; n];
    let mut any = false;
    for k in drivers {
        any = true;
        for (j, bit) in bus.iter_mut().enumerate() {
            // Driver with count k pulls bits j >= k low (open collector
            // pulls low; the idle bus reads high).
            if j >= k {
                *bit = false;
            }
        }
    }
    if !any {
        bus.fill(false);
    }
    bus
}

/// Minimum count seen on the bus (bits high up to the minimum).
fn bus_min(bus: &[bool]) -> usize {
    bus.iter().take_while(|&&b| b).count()
}

/// Cycle-accurate model of the central LCF scheduler hardware.
///
/// ```
/// use lcf_core::request::RequestMatrix;
/// use lcf_hw::rtl::RtlScheduler;
///
/// let mut rtl = RtlScheduler::new(16);
/// let m = rtl.schedule(&RequestMatrix::full(16));
/// assert_eq!(m.size(), 16);
/// assert_eq!(rtl.cycles(), 50); // 3n+2 cycles, as Table 2 says
/// ```
#[derive(Clone, Debug)]
pub struct RtlScheduler {
    n: usize,
    slices: Vec<Slice>,
    /// RES: index of the resource scheduled first this cycle (the paper's
    /// rotating resource pointer; our behavioral `J`).
    res_origin: usize,
    /// Base priority rotation (our behavioral `I`).
    prio_origin: usize,
    /// Total clock cycles consumed since construction.
    cycles: u64,
}

impl RtlScheduler {
    /// Creates the hardware model for an `n`-port switch.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "scheduler requires n > 0");
        RtlScheduler {
            n,
            slices: (0..n).map(|i| Slice::new(n, i)).collect(),
            res_origin: 0,
            prio_origin: 0,
            cycles: 0,
        }
    }

    /// Number of ports.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Clock cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Cycles one scheduling run takes: `3n + 2` (Table 2, "Calculate LCF
    /// schedule"): `n` cycles to sum requests into the NRQ shift registers,
    /// `2n` bus cycles (NRQ phase + PRIO phase per resource), 2 cycles of
    /// bookkeeping (pointer rotation, grant latch).
    pub fn cycles_per_schedule(&self) -> u64 {
        (3 * self.n + 2) as u64
    }

    /// The `(I, J)` rotation state, comparable with
    /// [`CentralLcf::pointer`](lcf_core::lcf::CentralLcf::pointer).
    pub fn pointer(&self) -> (usize, usize) {
        (self.prio_origin, self.res_origin)
    }

    /// Cycles the precalculated-schedule check takes: `2n + 1` (Table 2,
    /// "Check prec. schedule"): two bus cycles per target (claim drive +
    /// winner latch) and one setup cycle.
    pub fn precalc_check_cycles(&self) -> u64 {
        (2 * self.n + 1) as u64
    }

    /// Runs the full Clint scheduling sequence of Table 2: first the
    /// precalculated-schedule integrity check (`2n + 1` cycles), then the
    /// LCF calculation over what remains (`3n + 2` cycles) — `5n + 3` in
    /// total.
    ///
    /// `claims.get(i, j)` means initiator `i` pre-claims target `j`.
    /// Returns the validated owner per target and the LCF matching for the
    /// rest; a pre-scheduled initiator or target does not participate in
    /// the LCF stage (Sec. 4.3).
    pub fn schedule_with_precalc(
        &mut self,
        requests: &RequestMatrix,
        claims: &lcf_core::bitmat::BitMatrix,
    ) -> (Vec<Option<usize>>, Matching) {
        assert_eq!(requests.n(), self.n, "request matrix size mismatch");
        assert_eq!(claims.n(), self.n, "claim matrix size mismatch");
        let n = self.n;

        // Stage 1: integrity check. Each target samples its claim column on
        // the bus; conflicts resolve by the rotating priority chain
        // anchored at the cycle's top-priority requester (the same PRIO
        // hardware, reused — "the existing logic of the LCF scheduler is
        // used during the first stage").
        let anchor = self.prio_origin;
        let mut owners: Vec<Option<usize>> = vec![None; n];
        for (j, owner) in owners.iter_mut().enumerate() {
            for k in 0..n {
                let i = (anchor + k) % n;
                if claims.get(i, j) {
                    *owner = Some(i);
                    break;
                }
            }
        }
        self.cycles += self.precalc_check_cycles();

        // Stage 2: LCF over the residual requests.
        let mut masked = requests.clone();
        for (j, owner) in owners.iter().enumerate() {
            if let Some(i) = *owner {
                masked.clear_requester(i);
                masked.clear_resource(j);
            }
        }
        let matching = self.schedule(&masked);
        (owners, matching)
    }

    /// Runs one scheduling cycle and returns the matching.
    pub fn schedule(&mut self, requests: &RequestMatrix) -> Matching {
        assert_eq!(requests.n(), self.n, "request matrix size mismatch");
        let n = self.n;

        // Load request registers and sum them into NRQ (n clock cycles:
        // one per request bit shifted into the unary register).
        for (i, slice) in self.slices.iter_mut().enumerate() {
            for j in 0..n {
                slice.r[j] = requests.get(i, j);
            }
            let count = slice.r.iter().filter(|&&b| b).count();
            Slice::load(&mut slice.nrq, count);
            slice.ngt = true;
            slice.cp = false;
            slice.gnt = None;
        }
        self.cycles += n as u64;

        // Schedule the n resources, two bus cycles each.
        for step in 0..n {
            let resource = (self.res_origin + step) % n;
            // "Prior to scheduling a resource, registers PRIO are shifted
            // to rotate the priorities of the requesters."
            for slice in self.slices.iter_mut() {
                slice.rotate_prio();
            }
            let top_prio_holder = (0..n)
                .find(|&i| Slice::count(&self.slices[i].prio) == 0)
                // lint:allow(no-panic): rotate_prio keeps PRIO a permutation, so priority 0 always exists
                .expect("exactly one slice holds priority 0");
            debug_assert_eq!(top_prio_holder, (self.prio_origin + step) % n);

            // --- Bus cycle 1: NRQ comparison --------------------------------
            // Participants: un-granted requesters with a request for this
            // resource.
            let participates = |s: &Slice| s.ngt && s.r[resource];
            let bus = wired_and_bus(
                n,
                self.slices
                    .iter()
                    .filter(|s| participates(s))
                    .map(|s| Slice::count(&s.nrq)),
            );
            let min = bus_min(&bus);
            for slice in self.slices.iter_mut() {
                slice.cp = slice.ngt && slice.r[resource] && Slice::count(&slice.nrq) == min;
            }
            self.cycles += 1;

            // --- Bus cycle 2: PRIO arbitration -------------------------------
            // Participants: CP winners, plus the top-priority requester if
            // it has a request (the round-robin position, joining
            // independent of its request count).
            let rr_joins =
                self.slices[top_prio_holder].ngt && self.slices[top_prio_holder].r[resource];
            let prio_of = |i: usize| Slice::count(&self.slices[i].prio);
            let prio_participants: Vec<usize> = (0..n)
                .filter(|&i| self.slices[i].cp || (rr_joins && i == top_prio_holder))
                .collect();
            let prio_bus = wired_and_bus(n, prio_participants.iter().map(|&i| prio_of(i)));
            let winner_prio = bus_min(&prio_bus);
            let winner = prio_participants
                .iter()
                .copied()
                .find(|&i| prio_of(i) == winner_prio);
            self.cycles += 1;

            // Grant latch + NRQ updates (same edge as the next bus cycle).
            if let Some(w) = winner {
                self.slices[w].gnt = Some(resource);
                self.slices[w].ngt = false;
                for (i, slice) in self.slices.iter_mut().enumerate() {
                    if i != w && slice.ngt && slice.r[resource] {
                        // The resource is gone: withdraw the request and
                        // shift-decrement the outstanding count.
                        slice.r[resource] = false;
                        Slice::shift_decrement(&mut slice.nrq);
                    }
                }
            }
        }

        // End of cycle: rotate priorities one extra time; after n cycles
        // advance the resource origin (Sec. 4.2's "shifting PRIO one more
        // time after completing a schedule and incrementing RES an
        // additional time after n scheduling cycles").
        for slice in self.slices.iter_mut() {
            slice.rotate_prio();
        }
        self.prio_origin = (self.prio_origin + 1) % n;
        if self.prio_origin == 0 {
            self.res_origin = (self.res_origin + 1) % n;
        }
        self.cycles += 2;

        let mut m = Matching::new(n);
        for (i, slice) in self.slices.iter().enumerate() {
            if let Some(j) = slice.gnt {
                m.connect(i, j);
            }
        }
        m
    }
}

impl lcf_core::traits::Scheduler for RtlScheduler {
    fn name(&self) -> &'static str {
        "lcf_central_rr_rtl"
    }

    fn num_ports(&self) -> usize {
        self.n
    }

    // The RTL model is a cycle-accurate reference, not a hot-path kernel:
    // it rebuilds its grant state per call, so `schedule_into` just copies
    // the result into the caller's buffer.
    fn schedule_into(&mut self, requests: &RequestMatrix, out: &mut Matching) {
        let m = RtlScheduler::schedule(self, requests);
        out.reset(self.n);
        for (i, j) in m.pairs() {
            out.connect(i, j);
        }
    }

    fn schedule(&mut self, requests: &RequestMatrix) -> Matching {
        RtlScheduler::schedule(self, requests)
    }

    fn reset(&mut self) {
        *self = RtlScheduler::new(self.n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcf_core::lcf::CentralLcf;
    use lcf_core::traits::Scheduler;

    #[test]
    fn unary_encoding_roundtrip() {
        for n in [4usize, 8, 16] {
            for k in 0..=n {
                let v = unary(n, k);
                assert_eq!(Slice::count(&v), k);
            }
        }
    }

    #[test]
    fn shift_decrement_matches_paper() {
        // "to represent three requests, NRQ is set to 1…1000"; one shift
        // leaves two zeros.
        let mut reg = unary(8, 3);
        assert_eq!(reg, vec![false, false, false, true, true, true, true, true]);
        Slice::shift_decrement(&mut reg);
        assert_eq!(Slice::count(&reg), 2);
        // Decrementing zero stays zero (no underflow).
        let mut zero = unary(8, 0);
        Slice::shift_decrement(&mut zero);
        assert_eq!(Slice::count(&zero), 0);
    }

    #[test]
    fn wired_and_bus_selects_minimum() {
        // "vectors 0…0111 and 0…0001 are written to the bus. Sampling the
        // bus, 0…0001 will be seen" — i.e. the minimum count (1) survives.
        let bus = wired_and_bus(8, [3usize, 1].into_iter());
        assert_eq!(bus_min(&bus), 1);
        let bus = wired_and_bus(8, [5usize, 5, 2].into_iter());
        assert_eq!(bus_min(&bus), 2);
        // Idle bus (no drivers).
        let bus = wired_and_bus(8, std::iter::empty());
        assert_eq!(bus_min(&bus), 0);
    }

    #[test]
    fn paper_figure3_on_the_rtl_model() {
        let requests = RequestMatrix::from_pairs(
            4,
            [
                (0, 1),
                (0, 2),
                (1, 0),
                (1, 2),
                (1, 3),
                (2, 0),
                (2, 2),
                (2, 3),
                (3, 1),
            ],
        );
        let mut rtl = RtlScheduler::new(4);
        // Advance to the Fig. 3 state (I = 1, J = 0) by burning one cycle.
        rtl.schedule(&RequestMatrix::new(4));
        let m = rtl.schedule(&requests);
        assert_eq!(
            m.pairs().collect::<Vec<_>>(),
            vec![(0, 2), (1, 0), (2, 3), (3, 1)]
        );
    }

    #[test]
    fn rtl_is_bit_equivalent_to_behavioral_lcf() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let n = 16;
        let mut rng = StdRng::seed_from_u64(0x217);
        let mut rtl = RtlScheduler::new(n);
        let mut beh = CentralLcf::with_round_robin(n);
        for round in 0..500 {
            let requests = RequestMatrix::random(n, 0.3, &mut rng);
            let a: Vec<_> = rtl.schedule(&requests).pairs().collect();
            let b: Vec<_> = beh.schedule(&requests).pairs().collect();
            assert_eq!(a, b, "RTL and behavioral diverged in round {round}");
            assert_eq!(rtl.pointer(), beh.pointer(), "pointer state diverged");
        }
    }

    #[test]
    fn cycle_count_matches_table2() {
        let mut rtl = RtlScheduler::new(16);
        assert_eq!(rtl.cycles_per_schedule(), 50); // 3n+2 at n=16
        let before = rtl.cycles();
        rtl.schedule(&RequestMatrix::full(16));
        assert_eq!(rtl.cycles() - before, 50, "one run must take 3n+2 cycles");
    }

    #[test]
    fn round_robin_position_wins_on_rtl() {
        // Same scenario as the behavioral test: requester 1 holds the RR
        // position for T0 despite a worse NRQ.
        let requests = RequestMatrix::from_pairs(4, [(0, 0), (1, 0), (1, 1)]);
        let mut rtl = RtlScheduler::new(4);
        rtl.schedule(&RequestMatrix::new(4)); // advance to I=1, J=0
        let m = rtl.schedule(&requests);
        assert_eq!(m.output_for(1), Some(0));
        assert_eq!(m.output_for(0), None);
    }

    #[test]
    fn empty_and_full_matrices() {
        let mut rtl = RtlScheduler::new(8);
        assert_eq!(rtl.schedule(&RequestMatrix::new(8)).size(), 0);
        assert_eq!(rtl.schedule(&RequestMatrix::full(8)).size(), 8);
    }

    #[test]
    fn full_sequence_takes_5n_plus_3_cycles() {
        use lcf_core::bitmat::BitMatrix;
        let n = 16;
        let mut rtl = RtlScheduler::new(n);
        let claims = BitMatrix::from_fn(n, |i, j| i == 3 && (j == 1 || j == 5));
        let before = rtl.cycles();
        let (owners, matching) = rtl.schedule_with_precalc(&RequestMatrix::full(n), &claims);
        assert_eq!(rtl.cycles() - before, (5 * n + 3) as u64, "Table 2 total");
        assert_eq!(owners[1], Some(3));
        assert_eq!(owners[5], Some(3));
        // Pre-scheduled initiator/targets excluded from the LCF stage.
        assert_eq!(matching.output_for(3), None);
        assert_eq!(matching.input_for(1), None);
        assert_eq!(matching.input_for(5), None);
        // 15 initiators compete for the 14 unclaimed targets: all 14 match.
        assert_eq!(matching.size(), n - 2);
    }

    #[test]
    fn precalc_conflict_resolved_by_priority_chain() {
        use lcf_core::bitmat::BitMatrix;
        let n = 4;
        let mut rtl = RtlScheduler::new(n);
        // Both 0 and 2 claim target 1; fresh scheduler anchors at 0.
        let claims = BitMatrix::from_fn(n, |i, j| (i == 0 || i == 2) && j == 1);
        let (owners, _) = rtl.schedule_with_precalc(&RequestMatrix::new(n), &claims);
        assert_eq!(owners[1], Some(0));
        // After one cycle the anchor advanced; requester 1 has priority,
        // scan order 1,2,3,0 picks 2.
        let (owners, _) = rtl.schedule_with_precalc(&RequestMatrix::new(n), &claims);
        assert_eq!(owners[1], Some(2));
    }
}
