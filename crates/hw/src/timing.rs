//! Clock-cycle/timing model of the scheduling tasks (Table 2) and the
//! asymptotic speed comparison of Sec. 6.2.

use crate::log2_ceil;

/// Clock frequency of the paper's Clint FPGA implementation.
pub const PAPER_CLOCK_HZ: f64 = 66.0e6;

/// One row of Table 2.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TaskTiming {
    /// Task name.
    pub task: &'static str,
    /// Cycle-count formula rendered as text (the "Decomposition" column).
    pub decomposition: &'static str,
    /// Clock cycles.
    pub cycles: usize,
    /// Wall time in nanoseconds at the configured clock.
    pub time_ns: f64,
}

/// Timing model of the central LCF scheduler implementation.
#[derive(Clone, Copy, Debug)]
pub struct TimingModel {
    n: usize,
    clock_hz: f64,
}

impl TimingModel {
    /// Model for an `n`-port switch at the paper's 66 MHz clock.
    pub fn paper(n: usize) -> Self {
        Self::new(n, PAPER_CLOCK_HZ)
    }

    /// Model with an explicit clock frequency.
    pub fn new(n: usize, clock_hz: f64) -> Self {
        assert!(n > 0, "model requires n > 0");
        assert!(clock_hz > 0.0, "clock must be positive");
        TimingModel { n, clock_hz }
    }

    /// Port count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Cycles to check the precalculated schedule: `2n + 1`.
    pub fn precalc_check_cycles(&self) -> usize {
        2 * self.n + 1
    }

    /// Cycles to calculate the LCF schedule: `3n + 2`.
    pub fn lcf_cycles(&self) -> usize {
        3 * self.n + 2
    }

    /// Total scheduling cycles: `5n + 3`.
    pub fn total_cycles(&self) -> usize {
        5 * self.n + 3
    }

    /// Converts cycles to nanoseconds at the model clock.
    pub fn cycles_to_ns(&self, cycles: usize) -> f64 {
        cycles as f64 / self.clock_hz * 1e9
    }

    /// The three rows of Table 2.
    pub fn table2(&self) -> Vec<TaskTiming> {
        vec![
            TaskTiming {
                task: "Check prec. schedule",
                decomposition: "2n+1",
                cycles: self.precalc_check_cycles(),
                time_ns: self.cycles_to_ns(self.precalc_check_cycles()),
            },
            TaskTiming {
                task: "Calculate LCF schedule",
                decomposition: "3n+2",
                cycles: self.lcf_cycles(),
                time_ns: self.cycles_to_ns(self.lcf_cycles()),
            },
            TaskTiming {
                task: "Total",
                decomposition: "5n+3",
                cycles: self.total_cycles(),
                time_ns: self.cycles_to_ns(self.total_cycles()),
            },
        ]
    }
}

/// Abstract time steps of a *central* scheduler: targets are scheduled
/// sequentially, one step per target — `O(n)` (Sec. 6.2, "Speed").
pub fn central_time_steps(n: usize) -> usize {
    n
}

/// Expected time steps of the *distributed* scheduler: one step per
/// iteration, `O(log₂ n)` iterations expected for a near-optimal schedule
/// (Sec. 6.2; the PIM analysis gives `E[iters] ≤ log₂ n + 4/3`).
pub fn distributed_expected_time_steps(n: usize) -> f64 {
    log2_ceil(n) as f64 + 4.0 / 3.0
}

/// Port count above which the distributed scheduler's expected step count
/// beats the central scheduler's — the paper's "considerably faster for
/// large values of n".
pub fn crossover_port_count() -> usize {
    (2..)
        .find(|&n| (central_time_steps(n) as f64) > distributed_expected_time_steps(n))
        // lint:allow(no-panic): central cost grows as n^2 vs n log n expected, so the crossover exists
        .expect("crossover exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_reproduced_at_n16() {
        let rows = TimingModel::paper(16).table2();
        assert_eq!(rows[0].cycles, 33);
        assert_eq!(rows[1].cycles, 50);
        assert_eq!(rows[2].cycles, 83);
        // Paper rounds to 500 ns / 758 ns / 1258 ns.
        assert!((rows[0].time_ns - 500.0).abs() < 1.0, "{}", rows[0].time_ns);
        assert!((rows[1].time_ns - 758.0).abs() < 1.0, "{}", rows[1].time_ns);
        assert!(
            (rows[2].time_ns - 1258.0).abs() < 1.0,
            "{}",
            rows[2].time_ns
        );
    }

    #[test]
    fn totals_are_consistent() {
        for n in [1usize, 4, 16, 64, 256] {
            let m = TimingModel::paper(n);
            assert_eq!(
                m.precalc_check_cycles() + m.lcf_cycles(),
                m.total_cycles(),
                "decompositions must add up at n={n}"
            );
        }
    }

    #[test]
    fn clint_schedule_fits_in_reschedule_interval() {
        // Sec. 1: "the switch is re-scheduled every 8.5 µs and the actual
        // scheduling time is 1.3 µs" — our total must come in just under.
        let m = TimingModel::paper(16);
        let total_us = m.cycles_to_ns(m.total_cycles()) / 1000.0;
        assert!(total_us < 1.3, "scheduling time {total_us} µs");
        assert!(total_us > 1.2, "suspiciously fast: {total_us} µs");
    }

    #[test]
    fn faster_clock_scales_linearly() {
        let slow = TimingModel::new(16, 66.0e6);
        let fast = TimingModel::new(16, 132.0e6);
        assert!((slow.cycles_to_ns(83) / fast.cycles_to_ns(83) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn distributed_wins_for_wide_switches() {
        let x = crossover_port_count();
        // log2_ceil(n) + 4/3 < n from n = 4 on (3 < 3.33 at n = 3).
        assert_eq!(x, 4);
        assert!(central_time_steps(64) as f64 > distributed_expected_time_steps(64) * 8.0);
    }
}
