//! Gate/register count model of the central LCF scheduler (Table 1).
//!
//! The paper's Fig. 6 shows the per-requester slice: the request register
//! `R[i, 0..n-1]`, the `NRQ` and `PRIO` shift registers (inverse unary
//! encoding), the `NGT`/`CP` flags, the `GNT` register and the open-collector
//! bus interface. The *central* part holds the `RES` resource pointer, the
//! control sequencer and the per-port bus/packet interface.
//!
//! Component widths follow the structure (bit-sliced datapaths are linear in
//! `n`; encoded values are `log₂ n` wide); the per-bit gate factors are
//! calibrated so that `n = 16` reproduces Table 1 exactly:
//!
//! | | gates | registers |
//! |---|---|---|
//! | distributed (16 slices) | 16 × 450 = 7200 | 16 × 86 = 1376 |
//! | central | 767 | 216 |
//! | **total** | **7967** | **1592** |

use crate::log2_ceil;

/// One named component of the model with its gate and register counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Component {
    /// Component name as in Fig. 6.
    pub name: &'static str,
    /// Two-input gate equivalents.
    pub gates: usize,
    /// Register (flip-flop) bits.
    pub regs: usize,
}

/// Cost summary of a scheduler instance (one row of Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostRow {
    /// Two-input gate equivalents.
    pub gates: usize,
    /// Register bits.
    pub regs: usize,
}

/// The gate-count model, parameterized by port count.
#[derive(Clone, Copy, Debug)]
pub struct GateModel {
    n: usize,
}

impl GateModel {
    /// Creates the model for an `n`-port switch.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "model requires n > 0");
        GateModel { n }
    }

    /// Port count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Components of one requester slice (the logic of Fig. 6, replicated
    /// per input port and placeable next to it).
    pub fn slice_components(&self) -> Vec<Component> {
        let n = self.n;
        let g = log2_ceil(n);
        vec![
            // Registers. 5 n-bit banks: R, its config double-buffer (the
            // cfg packet arrives while the previous cycle is scheduled),
            // NRQ, PRIO, and the bus sampling register.
            Component {
                name: "request register R",
                gates: 4 * n,
                regs: n,
            },
            Component {
                name: "config shadow register",
                gates: 0,
                regs: n,
            },
            Component {
                name: "NRQ shift register + sum",
                gates: 9 * n,
                regs: n,
            },
            Component {
                name: "PRIO shift register",
                gates: 3 * n,
                regs: n,
            },
            Component {
                name: "bus sample register",
                gates: 0,
                regs: n,
            },
            Component {
                name: "bus drivers (NRQ/PRIO phases)",
                gates: 4 * n,
                regs: 0,
            },
            Component {
                name: "bus comparator (CP)",
                gates: 4 * n,
                regs: 1,
            },
            Component {
                name: "grant mask / NGT",
                gates: 2 * n,
                regs: 1,
            },
            Component {
                name: "GNT register + encode",
                gates: 6 * g,
                regs: g,
            },
            Component {
                name: "slice control",
                gates: 10,
                regs: 0,
            },
        ]
    }

    /// Components of the central part (RES pointer, sequencer, per-port
    /// interface).
    pub fn central_components(&self) -> Vec<Component> {
        let n = self.n;
        let g = log2_ceil(n);
        vec![
            // Grant/config packet interface is per port (serializers,
            // CRC check/generate share), hence linear in n.
            Component {
                name: "port interface / packet mux",
                gates: 40 * n,
                regs: 12 * n,
            },
            Component {
                name: "bus precharge / sense",
                gates: 6 * n,
                regs: n,
            },
            Component {
                name: "RES resource pointer (+1)",
                gates: 7 * g,
                regs: g,
            },
            Component {
                name: "control sequencer",
                gates: 3,
                regs: 4,
            },
        ]
    }

    fn sum(components: &[Component]) -> CostRow {
        CostRow {
            gates: components.iter().map(|c| c.gates).sum(),
            regs: components.iter().map(|c| c.regs).sum(),
        }
    }

    /// Cost of one requester slice.
    pub fn slice(&self) -> CostRow {
        Self::sum(&self.slice_components())
    }

    /// Cost of all `n` slices — the "Distributed" column of Table 1.
    pub fn distributed(&self) -> CostRow {
        let s = self.slice();
        CostRow {
            gates: s.gates * self.n,
            regs: s.regs * self.n,
        }
    }

    /// Cost of the central logic — the "Central" column of Table 1.
    pub fn central(&self) -> CostRow {
        Self::sum(&self.central_components())
    }

    /// Total cost — the "Total" column of Table 1.
    pub fn total(&self) -> CostRow {
        let d = self.distributed();
        let c = self.central();
        CostRow {
            gates: d.gates + c.gates,
            regs: d.regs + c.regs,
        }
    }

    /// Fraction of a Xilinx XCV600's logic this uses, scaled from the
    /// paper's observation that the n = 16 implementation used 15% of the
    /// device. Values above 1.0 mean "does not fit".
    pub fn xcv600_utilization(&self) -> f64 {
        const PAPER_TOTAL_GATES: f64 = 7967.0;
        self.total().gates as f64 * 0.15 / PAPER_TOTAL_GATES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduced_at_n16() {
        let m = GateModel::new(16);
        assert_eq!(
            m.slice(),
            CostRow {
                gates: 450,
                regs: 86
            }
        );
        assert_eq!(
            m.distributed(),
            CostRow {
                gates: 7200,
                regs: 1376
            }
        );
        assert_eq!(
            m.central(),
            CostRow {
                gates: 767,
                regs: 216
            }
        );
        assert_eq!(
            m.total(),
            CostRow {
                gates: 7967,
                regs: 1592
            }
        );
    }

    #[test]
    fn cost_scales_monotonically() {
        let mut prev = GateModel::new(2).total();
        for n in [4, 8, 16, 32, 64, 128] {
            let cur = GateModel::new(n).total();
            assert!(cur.gates > prev.gates && cur.regs > prev.regs);
            prev = cur;
        }
    }

    #[test]
    fn distributed_part_dominates_for_large_n() {
        // The slices are the bit-sliced datapath; they must dwarf the
        // central sequencer as n grows.
        let m = GateModel::new(64);
        assert!(m.distributed().gates > 2 * m.central().gates);
    }

    #[test]
    fn slice_regs_follow_structure() {
        // 5 n-bit register banks + NGT + CP + GNT(log2 n).
        for n in [4usize, 16, 64] {
            let m = GateModel::new(n);
            let expected = 5 * n + 2 + crate::log2_ceil(n);
            assert_eq!(m.slice().regs, expected);
        }
    }

    #[test]
    fn utilization_matches_paper_at_16() {
        let m = GateModel::new(16);
        assert!((m.xcv600_utilization() - 0.15).abs() < 1e-12);
        // A 64-port scheduler would not fit in the same part at this rate.
        assert!(GateModel::new(128).xcv600_utilization() > 1.0);
    }

    #[test]
    fn component_breakdown_sums_to_row() {
        let m = GateModel::new(32);
        let sum_gates: usize = m.slice_components().iter().map(|c| c.gates).sum();
        assert_eq!(sum_gates, m.slice().gates);
        let sum_regs: usize = m.central_components().iter().map(|c| c.regs).sum();
        assert_eq!(sum_regs, m.central().regs);
    }
}
