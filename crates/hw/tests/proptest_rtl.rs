//! Property test: the RTL model of the Fig. 6 hardware is equivalent to
//! the behavioral central LCF scheduler on arbitrary request streams.

use lcf_core::lcf::CentralLcf;
use lcf_core::request::RequestMatrix;
use lcf_core::traits::Scheduler;
use lcf_hw::rtl::RtlScheduler;
use proptest::prelude::*;

fn request_stream(n: usize, len: usize) -> impl Strategy<Value = Vec<RequestMatrix>> {
    proptest::collection::vec(proptest::collection::vec(any::<bool>(), n * n), 1..len).prop_map(
        move |mats| {
            mats.into_iter()
                .map(|bits| RequestMatrix::from_fn(n, |i, j| bits[i * n + j]))
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bit-for-bit equivalence across consecutive slots (state carries:
    /// priority rotation, resource origin).
    #[test]
    fn rtl_equals_behavioral(stream in request_stream(8, 8)) {
        let mut rtl = RtlScheduler::new(8);
        let mut beh = CentralLcf::with_round_robin(8);
        for (slot, requests) in stream.iter().enumerate() {
            let a: Vec<_> = rtl.schedule(requests).pairs().collect();
            let b: Vec<_> = beh.schedule(requests).pairs().collect();
            prop_assert_eq!(a, b, "diverged at slot {}", slot);
        }
        prop_assert_eq!(rtl.pointer(), beh.pointer());
    }

    /// Cycle accounting is exact regardless of the request pattern.
    #[test]
    fn cycles_are_exactly_3n_plus_2(requests_bits in proptest::collection::vec(any::<bool>(), 36)) {
        let n = 6;
        let requests = RequestMatrix::from_fn(n, |i, j| requests_bits[i * n + j]);
        let mut rtl = RtlScheduler::new(n);
        let before = rtl.cycles();
        rtl.schedule(&requests);
        prop_assert_eq!(rtl.cycles() - before, (3 * n + 2) as u64);
    }

    /// Odd, non-power-of-two port counts work too.
    #[test]
    fn odd_port_counts(stream in request_stream(5, 5)) {
        let mut rtl = RtlScheduler::new(5);
        let mut beh = CentralLcf::with_round_robin(5);
        for requests in &stream {
            prop_assert_eq!(
                rtl.schedule(requests).pairs().collect::<Vec<_>>(),
                beh.schedule(requests).pairs().collect::<Vec<_>>()
            );
        }
    }
}
