//! A self-contained, explicitly specified ChaCha random number generator.
//!
//! Simulation results in this repository must be *bit-identical* across
//! machines, toolchains and releases: `SimReport.seed` is a reproducibility
//! contract, and golden tests pin exact packet counts. The `rand` crate's
//! `StdRng` documents that its algorithm may change between releases, which
//! breaks that contract — so the simulator uses this crate instead.
//!
//! The generator is the ChaCha stream cipher (D. J. Bernstein, "ChaCha, a
//! variant of Salsa20") used as a keystream generator:
//!
//! * the 256-bit key is derived from a `u64` seed by SplitMix64 (Steele,
//!   Lea & Flood, "Fast splittable pseudorandom number generators"),
//! * the stream and nonce words start at zero,
//! * each 64-byte block yields sixteen `u32` output words consumed in order;
//!   `next_u64` consumes two words, low word first.
//!
//! Every piece of that specification is frozen and covered by golden tests
//! (including the RFC 8439 test vector for the 20-round block function), so
//! two runs with the same seed produce the same stream forever.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bulk;

/// Number of `u32` words in a ChaCha block.
const BLOCK_WORDS: usize = 16;

/// The ChaCha block function: `rounds` must be even (8, 12 and 20 are the
/// standard choices). Writes `input` mixed-and-added into `output`.
fn chacha_block(input: &[u32; BLOCK_WORDS], rounds: u32, output: &mut [u32; BLOCK_WORDS]) {
    debug_assert!(rounds.is_multiple_of(2), "ChaCha round count must be even");
    let mut x = *input;

    #[inline(always)]
    fn quarter_round(x: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(16);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(12);
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(8);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(7);
    }

    for _ in 0..rounds / 2 {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }

    for i in 0..BLOCK_WORDS {
        output[i] = x[i].wrapping_add(input[i]);
    }
}

/// SplitMix64: expands a `u64` seed into a sequence of well-mixed `u64`s.
/// Used only for key derivation in [`ChaChaRng::from_u64_seed`].
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A ChaCha keystream generator with a compile-time round count.
///
/// [`ChaCha8Rng`] (8 rounds) is the workhorse: far stronger statistically
/// than any simulation needs, and fast. [`ChaCha20Rng`] (20 rounds) exists
/// so the block function can be validated against the RFC 8439 test vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaChaRng<const ROUNDS: u32> {
    /// The input block: constants, key, block counter, nonce.
    state: [u32; BLOCK_WORDS],
    /// The current output block.
    buf: [u32; BLOCK_WORDS],
    /// Next unread word in `buf`; `BLOCK_WORDS` means "refill needed".
    word_idx: usize,
}

/// The default simulation RNG: ChaCha with 8 rounds.
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds (the RFC 8439 cipher).
pub type ChaCha20Rng = ChaChaRng<20>;

/// `b"expand 32-byte k"` as four little-endian `u32` constants.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

impl<const ROUNDS: u32> ChaChaRng<ROUNDS> {
    /// Creates a generator from a 256-bit key (eight little-endian words),
    /// with the block counter and nonce words starting at zero.
    pub fn from_key(key: [u32; 8]) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&key);
        // state[12..16]: 64-bit block counter + 64-bit nonce, all zero.
        ChaChaRng {
            state,
            buf: [0; BLOCK_WORDS],
            word_idx: BLOCK_WORDS,
        }
    }

    /// Creates a generator from a `u64` seed.
    ///
    /// The 256-bit key is the first four SplitMix64 outputs of `seed`, each
    /// split into (low word, high word). This derivation is frozen: the
    /// golden tests below pin its output.
    pub fn from_u64_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_exact_mut(2) {
            let v = splitmix64(&mut sm);
            pair[0] = v as u32;
            pair[1] = (v >> 32) as u32;
        }
        Self::from_key(key)
    }

    /// Advances to the next keystream block.
    fn refill(&mut self) {
        chacha_block(&self.state, ROUNDS, &mut self.buf);
        // 64-bit block counter in words 12/13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.word_idx = 0;
    }

    /// The next `u32` of the keystream.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        if self.word_idx >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.word_idx];
        self.word_idx += 1;
        w
    }

    /// The next `u64` of the keystream (two words, low word first).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    /// Fills `dest` with keystream bytes (each word little-endian).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let w = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 Sec. 2.3.2: the ChaCha20 block function test vector.
    #[test]
    fn rfc8439_block_function_vector() {
        let key: [u32; 8] = [
            0x03020100, 0x07060504, 0x0b0a0908, 0x0f0e0d0c, 0x13121110, 0x17161514, 0x1b1a1918,
            0x1f1e1d1c,
        ];
        let mut input = [0u32; BLOCK_WORDS];
        input[..4].copy_from_slice(&SIGMA);
        input[4..12].copy_from_slice(&key);
        input[12] = 0x00000001; // block counter
        input[13] = 0x09000000; // nonce word 0
        input[14] = 0x4a000000; // nonce word 1
        input[15] = 0x00000000; // nonce word 2
        let mut out = [0u32; BLOCK_WORDS];
        chacha_block(&input, 20, &mut out);
        let expected: [u32; BLOCK_WORDS] = [
            0xe4e7f110, 0x15593bd1, 0x1fdd0f50, 0xc47120a3, 0xc7f4d1c7, 0x0368c033, 0x9aaa2204,
            0x4e6cd4c3, 0x466482d2, 0x09aa9f07, 0x05d7c214, 0xa2028bd9, 0xd19c12b5, 0xb94e16de,
            0xe883d0cb, 0x4e3c50a2,
        ];
        assert_eq!(out, expected);
    }

    /// The u64 seed derivation is frozen: SplitMix64's documented first
    /// outputs for seed 0 are 0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, ...
    #[test]
    fn splitmix64_reference_outputs() {
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
        assert_eq!(splitmix64(&mut s), 0xF88B_B8A8_724C_81EC);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::from_u64_seed(42);
        let mut b = ChaCha8Rng::from_u64_seed(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::from_u64_seed(1);
        let mut b = ChaCha8Rng::from_u64_seed(2);
        let a16: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let b16: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(a16, b16);
    }

    #[test]
    fn counter_carries_across_blocks() {
        let mut r = ChaCha8Rng::from_u64_seed(7);
        r.state[12] = u32::MAX; // next refill wraps the low counter word
        r.word_idx = BLOCK_WORDS;
        let _ = r.next_u32();
        assert_eq!(r.state[12], 0);
        assert_eq!(r.state[13], 1);
    }

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = ChaCha8Rng::from_u64_seed(3);
        let mut b = ChaCha8Rng::from_u64_seed(3);
        let mut bytes = [0u8; 12];
        a.fill_bytes(&mut bytes);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        let w2 = b.next_u32().to_le_bytes();
        assert_eq!(&bytes[..4], &w0);
        assert_eq!(&bytes[4..8], &w1);
        assert_eq!(&bytes[8..12], &w2);
    }

    #[test]
    fn word_consumption_order_is_low_then_high() {
        let mut a = ChaCha8Rng::from_u64_seed(9);
        let mut b = ChaCha8Rng::from_u64_seed(9);
        let lo = a.next_u32() as u64;
        let hi = a.next_u32() as u64;
        assert_eq!(b.next_u64(), lo | (hi << 32));
    }

    #[test]
    fn rough_uniformity_of_bits() {
        let mut r = ChaCha8Rng::from_u64_seed(1234);
        let ones: u32 = (0..1000).map(|_| r.next_u64().count_ones()).sum();
        // 64,000 bits; expect ~32,000 ones. 6 sigma ≈ ±480.
        assert!((31_300..32_700).contains(&ones), "ones = {ones}");
    }
}
