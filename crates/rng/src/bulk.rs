//! Word-granularity bulk samplers for hot simulation loops.
//!
//! The general-purpose sampling path (`gen_bool` / `gen_range` in the rand
//! compat shim) spends most of its time on per-call setup: an f64 convert
//! and compare for Bernoulli, and a `wrapping_neg() % bound` division for
//! every bounded draw. In a heavy-traffic simulation those run once per
//! input per slot and dominate the traffic generator. The samplers here
//! hoist all of that to construction time and reduce each decision to one
//! or two word operations on raw keystream words:
//!
//! * [`Bernoulli32`] — a fixed-point threshold compare: `word < ⌈p·2³²⌉`.
//!   Resolution is 2⁻³² ≈ 2.3·10⁻¹⁰, far below the sampling noise of any
//!   feasible horizon (a 10⁹-slot run resolves rates to ~10⁻⁴·σ), so the
//!   quantization is statistically invisible even at load 0.995.
//! * [`UniformU32`] — Lemire's multiply-shift bounded reduction with the
//!   rejection threshold precomputed at construction, so the hot loop has
//!   no division at all.
//! * [`AliasTable`] — a Walker/Vose alias table: O(1) sampling from any
//!   fixed discrete distribution (hotspot and diagonal destination
//!   patterns) using one bounded draw and one threshold compare.
//!
//! All samplers consume raw `u32` words supplied by the caller, so one
//! [`crate::ChaCha8Rng::next_u64`] can feed two independent decisions and
//! the samplers stay decoupled from any particular generator type.

/// A Bernoulli sampler as a fixed-point threshold on raw 32-bit words.
///
/// `hit(word)` is `true` with probability `round(p·2³²)/2³²` over uniform
/// words; `p = 1.0` is exact (every word hits).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bernoulli32 {
    /// `hit` iff `word < threshold`; `u32::MAX` with `always` covers p = 1.
    threshold: u32,
    always: bool,
}

impl Bernoulli32 {
    /// Builds the sampler for success probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]` (NaN included).
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]: {p}");
        let scaled = (p * 4_294_967_296.0).round() as u64;
        if scaled >= 1 << 32 {
            Bernoulli32 {
                threshold: u32::MAX,
                always: true,
            }
        } else {
            Bernoulli32 {
                threshold: scaled as u32,
                always: false,
            }
        }
    }

    /// Whether this word is a success. `word` must be uniform over `u32`.
    #[inline]
    pub fn hit(&self, word: u32) -> bool {
        self.always || word < self.threshold
    }

    /// The raw fixed-point threshold: when [`Bernoulli32::is_always`] is
    /// false, `hit` iff `word < threshold`. Exposed so callers can build
    /// fused kernels (gate + payload in one word) on the same quantization.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Whether the sampler accepts every word (`p = 1.0` exactly).
    pub fn is_always(&self) -> bool {
        self.always
    }

    /// The exact success probability the sampler realizes.
    pub fn p(&self) -> f64 {
        if self.always {
            1.0
        } else {
            self.threshold as f64 / 4_294_967_296.0
        }
    }
}

/// A uniform sampler over `[0, bound)` via Lemire's multiply-shift
/// reduction, with the rejection threshold precomputed so the sampling
/// loop is division-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UniformU32 {
    bound: u32,
    /// Words whose low product half falls below this are rejected
    /// (`2³² mod bound` of them), which removes the modulo bias.
    threshold: u32,
}

impl UniformU32 {
    /// Builds the sampler for the half-open range `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn new(bound: u32) -> Self {
        assert!(bound > 0, "cannot sample an empty range");
        UniformU32 {
            bound,
            threshold: bound.wrapping_neg() % bound,
        }
    }

    /// The exclusive upper bound.
    pub fn bound(&self) -> u32 {
        self.bound
    }

    /// Draws one value, pulling fresh words from `next` until one is
    /// accepted (at most `2³² mod bound` in `2³²` words are rejected, so
    /// almost always exactly one draw).
    #[inline]
    // lint:allow(rng-stream): Lemire rejection contract - draws 1 word, plus extra words with probability (2^32 mod bound)/2^32 per rejection
    pub fn sample<F: FnMut() -> u32>(&self, mut next: F) -> u32 {
        loop {
            let m = (next() as u64) * (self.bound as u64);
            if (m as u32) >= self.threshold {
                return (m >> 32) as u32;
            }
        }
    }
}

/// A Walker/Vose alias table: O(1) sampling from a fixed discrete
/// distribution over `0..len`.
///
/// Sampling draws a uniform column and one extra word: the word decides
/// between the column itself and its alias via a fixed-point threshold.
/// Each column's threshold is quantized to 2⁻³², so realized probabilities
/// match the requested weights to within `len·2⁻³²` — statistically
/// invisible at simulation horizons.
#[derive(Clone, Debug)]
pub struct AliasTable {
    column: UniformU32,
    /// `keep iff word < prob[col]`, else take `alias[col]`.
    prob: Vec<u32>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights (not necessarily
    /// normalized).
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "alias table needs at least one weight");
        let mut sum = 0.0f64;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "invalid weight: {w}");
            sum += w;
        }
        assert!(sum > 0.0, "weights sum to zero");

        // Vose's stack construction on the weights scaled to mean 1.
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / sum).collect();
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        // alias[i] = i means "no alias": a spurious alias hit (possible
        // only through threshold rounding) still returns the right column.
        let mut prob = vec![u32::MAX; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            prob[s] = (scaled[s] * 4_294_967_296.0).round().min(u32::MAX as f64) as u32;
            alias[s] = l as u32;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers on either stack have scaled weight 1 up to rounding:
        // keep their initialized full-probability, self-alias entries.
        AliasTable {
            column: UniformU32::new(n as u32),
            prob,
            alias,
        }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is over a single outcome.
    pub fn is_empty(&self) -> bool {
        false // construction rejects empty weight sets
    }

    /// Draws one outcome index, pulling words from `next` (two words in
    /// the common case; more only on a Lemire rejection).
    #[inline]
    pub fn sample<F: FnMut() -> u32>(&self, mut next: F) -> usize {
        let col = self.column.sample(&mut next) as usize;
        if next() < self.prob[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChaCha8Rng;

    #[test]
    fn bernoulli_threshold_is_frozen() {
        // round(0.99 · 2³²) — a golden value: changing the fixed-point
        // derivation silently changes every fast-generator stream.
        let b = Bernoulli32::new(0.99);
        assert_eq!(b.threshold, 4_252_017_623);
        assert!(!b.always);
        assert!(b.hit(4_252_017_622));
        assert!(!b.hit(4_252_017_623));
        let half = Bernoulli32::new(0.5);
        assert_eq!(half.threshold, 1u64.wrapping_shl(31) as u32);
    }

    #[test]
    fn bernoulli_extremes() {
        let never = Bernoulli32::new(0.0);
        let always = Bernoulli32::new(1.0);
        for word in [0, 1, u32::MAX / 2, u32::MAX - 1, u32::MAX] {
            assert!(!never.hit(word));
            assert!(always.hit(word));
        }
        assert_eq!(never.p(), 0.0);
        assert_eq!(always.p(), 1.0);
    }

    #[test]
    #[should_panic(expected = "probability outside")]
    fn bernoulli_rejects_bad_probability() {
        let _ = Bernoulli32::new(1.0000001);
    }

    #[test]
    // Statistical assertions need tens of thousands of draws to hold;
    // Miri covers the structural tests instead.
    #[cfg_attr(miri, ignore)]
    fn bernoulli_empirical_rates() {
        let mut rng = ChaCha8Rng::from_u64_seed(11);
        for p in [0.01, 0.5, 0.99, 0.995] {
            let b = Bernoulli32::new(p);
            let draws = 200_000u32;
            let hits = (0..draws).filter(|_| b.hit(rng.next_u32())).count() as f64;
            let rate = hits / draws as f64;
            let sigma = (p * (1.0 - p) / draws as f64).sqrt();
            assert!(
                (rate - p).abs() < 6.0 * sigma + 1e-9,
                "p={p}: rate {rate} vs sigma {sigma}"
            );
        }
    }

    #[test]
    fn uniform_bounds_and_coverage() {
        let mut rng = ChaCha8Rng::from_u64_seed(12);
        for bound in [1u32, 2, 3, 5, 8, 17, 64, 1000] {
            let u = UniformU32::new(bound);
            // Coverage is only checked for small bounds, where 4000 draws
            // make a missed value astronomically unlikely. Miri keeps the
            // v < bound invariant but shrinks the sweep and skips the
            // census (300 draws cannot guarantee full coverage).
            let census = bound <= 64 && !cfg!(miri);
            let mut seen = vec![false; if census { bound as usize } else { 0 }];
            let draws = if cfg!(miri) { 300 } else { 4000 };
            for _ in 0..draws {
                let v = u.sample(|| rng.next_u32());
                assert!(v < bound, "bound {bound}: got {v}");
                if (v as usize) < seen.len() {
                    seen[v as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "bound {bound} missed a value");
        }
    }

    #[test]
    // Statistical assertions need tens of thousands of draws to hold;
    // Miri covers the structural tests instead.
    #[cfg_attr(miri, ignore)]
    fn uniform_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::from_u64_seed(13);
        let u = UniformU32::new(5);
        let mut counts = [0u32; 5];
        let draws = 50_000;
        for _ in 0..draws {
            counts[u.sample(|| rng.next_u32()) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10,000; 6 sigma ≈ ±537.
            assert!((9_400..10_600).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn uniform_rejects_zero_bound() {
        let _ = UniformU32::new(0);
    }

    #[test]
    // Statistical assertions need tens of thousands of draws to hold;
    // Miri covers the structural tests instead.
    #[cfg_attr(miri, ignore)]
    fn alias_uniform_weights_are_uniform() {
        let mut rng = ChaCha8Rng::from_u64_seed(14);
        let t = AliasTable::new(&[1.0; 8]);
        assert_eq!(t.len(), 8);
        let mut counts = [0u32; 8];
        let draws = 80_000;
        for _ in 0..draws {
            counts[t.sample(|| rng.next_u32())] += 1;
        }
        for &c in &counts {
            // Expected 10,000; 6 sigma ≈ ±564.
            assert!((9_400..10_600).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    // Statistical assertions need tens of thousands of draws to hold;
    // Miri covers the structural tests instead.
    #[cfg_attr(miri, ignore)]
    fn alias_matches_skewed_weights() {
        let mut rng = ChaCha8Rng::from_u64_seed(15);
        // A hotspot-shaped distribution: most mass on one outcome.
        let weights = [0.9, 0.04, 0.03, 0.02, 0.01];
        let t = AliasTable::new(&weights);
        let draws = 100_000;
        let mut counts = [0u32; 5];
        for _ in 0..draws {
            counts[t.sample(|| rng.next_u32())] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let rate = counts[i] as f64 / draws as f64;
            let sigma = (w * (1.0 - w) / draws as f64).sqrt();
            assert!(
                (rate - w).abs() < 6.0 * sigma,
                "outcome {i}: rate {rate} vs weight {w}"
            );
        }
    }

    #[test]
    fn alias_single_outcome_and_degenerate_mass() {
        let mut rng = ChaCha8Rng::from_u64_seed(16);
        let single = AliasTable::new(&[3.5]);
        assert!((0..100).all(|_| single.sample(|| rng.next_u32()) == 0));
        // All the mass on one of several outcomes.
        let point = AliasTable::new(&[0.0, 0.0, 7.0, 0.0]);
        assert!((0..100).all(|_| point.sample(|| rng.next_u32()) == 2));
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn alias_rejects_zero_mass() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn alias_rejects_empty() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    fn samplers_are_deterministic() {
        let b = Bernoulli32::new(0.37);
        let u = UniformU32::new(12);
        let t = AliasTable::new(&[1.0, 2.0, 3.0]);
        let run = || {
            let mut rng = ChaCha8Rng::from_u64_seed(99);
            let mut acc = Vec::new();
            for _ in 0..200 {
                acc.push((
                    b.hit(rng.next_u32()),
                    u.sample(|| rng.next_u32()),
                    t.sample(|| rng.next_u32()),
                ));
            }
            acc
        };
        assert_eq!(run(), run());
    }
}
