//! The `lcf` subcommand implementations. Each returns its output as a
//! string so the whole surface is unit-testable.

use crate::args::{parse_requests, Args};
use lcf_core::registry::{SchedulerKind, WeightedKind};
use lcf_core::request::RequestMatrix;
use lcf_fabric::clos::ClosNetwork;
use lcf_fabric::cost::optimal_clos;
use lcf_hw::comm;
use lcf_hw::gates::GateModel;
use lcf_hw::timing::TimingModel;
use lcf_sim::config::{ModelKind, SimConfig, TrafficKind};
use lcf_sim::runner::{run_sim, SimReport};
use lcf_sim::traffic::DestPattern;
use std::fmt::Write as _;

/// `lcf help`.
pub fn help() -> String {
    "lcf — Least Choice First switch-scheduling toolkit\n\
     \n\
     USAGE: lcf <command> [--options]\n\
     \n\
     COMMANDS\n\
     \x20 schedule   compute one matching for a request matrix\n\
     \x20            --requests \"0:1,2;1:0,2,3\" [--n 4] [--scheduler lcf_central_rr]\n\
     \x20            [--iterations 4] [--seed 0] [--cycles 1]\n\
     \x20 simulate   run the Fig. 11 switch model and report delay/throughput\n\
     \x20            --scheduler <name|outbuf> --load 0.8 [--ports 16]\n\
     \x20            [--slots 100000] [--warmup 20000] [--seed N]\n\
     \x20            [--pattern uniform|nonself|diagonal|hotspot:PORT:FRAC]\n\
     \x20            [--bursty MEAN_BURST] [--fast] [--backend bitset|scalar]\n\
     \x20            [--trace out.jsonl] [--metrics out.json] [--trace-cap N]\n\
     \x20 sweep      simulate many (scheduler, load) points\n\
     \x20            --loads 0.5,0.8,0.9 [--schedulers all|a,b,c] [...simulate opts]\n\
     \x20            [--replications R] [--trace out.jsonl] [--metrics out.json]\n\
     \n\
     \x20 --fast selects the word-granularity traffic kernels (same arrival\n\
     \x20 process, different RNG stream, ~4x less RNG work); --replications R\n\
     \x20 averages R independent seeds per point and reports 95% CIs.\n\
     \x20 trace      replay one seed and pretty-print scheduler decisions\n\
     \x20            [--scheduler lcf_central_rr] [--ports 4] [--load 0.85]\n\
     \x20            [--slots 12] [--seed N] (needs the `telemetry` feature)\n\
     \x20 serve      long-lived sharded engine: windowed sessions, merged\n\
     \x20            telemetry snapshots, online reconfiguration, drain\n\
     \x20            [--shards 4] [--window-slots 5000] [--snapshots 8]\n\
     \x20            [--control script.txt] [--drain-deadline 50000]\n\
     \x20            [--occupancy-range 4096] [...simulate opts]\n\
     \x20            control script: 'at <window> scheduler <name>',\n\
     \x20            'at <window> backend <scalar|bitset>', 'at <window>\n\
     \x20            load <frac>', 'at <window> drain' ('#' comments)\n\
     \x20 hw         hardware cost summary [--ports 16] [--clock-mhz 66]\n\
     \x20 fabric     crossbar vs Clos dimensioning --ports 64\n\
     \x20 clint      simulate the Clint interconnect\n\
     \x20            [--bulk-load 0.6] [--quick-load 0.1] [--slots 20000]\n\
     \x20            [--error-rate 0.0] [--hosts 16] [--seed N]\n\
     \x20 reliable   reliable bulk transfers over lossy links\n\
     \x20            [--loss 0.1] [--load 0.3] [--timeout 16] [--slots 20000]\n\
     \n\
     Scheduler names: lcf_central lcf_central_rr lcf_dist lcf_dist_rr pim\n\
     islip wfront fifo maxsize mwm (plus `outbuf` for simulate/sweep, and\n\
     the weighted schedulers `lqf` `ocf` `nwgreedy` `mwm` for simulate —\n\
     there `mwm` runs queue-length-weighted; in schedule/sweep it is the\n\
     unit-weight reference matcher).\n"
        .to_string()
}

/// True if the invocation asked for telemetry output.
fn wants_telemetry(args: &Args) -> bool {
    args.get("trace").is_some() || args.get("metrics").is_some()
}

/// Error for telemetry surfaces in a build without the feature.
#[cfg(not(feature = "telemetry"))]
const NEEDS_TELEMETRY: &str = "telemetry is not compiled into this binary; \
    rebuild with `--features telemetry` \
    (e.g. `cargo run -p lcf-cli --features telemetry --bin lcf -- ...`)";

/// Writes `--trace` / `--metrics` outputs and appends a summary of what
/// went where to `out`.
#[cfg(feature = "telemetry")]
fn export_telemetry(
    args: &Args,
    trace: &lcf_telemetry::TraceBuffer,
    metrics: &lcf_telemetry::MetricsRegistry,
    out: &mut String,
) -> Result<(), String> {
    if let Some(path) = args.get("trace") {
        std::fs::write(path, trace.to_jsonl()).map_err(|e| format!("cannot write {path}: {e}"))?;
        writeln!(
            out,
            "trace          {} events -> {} ({} evicted)",
            trace.len(),
            path,
            trace.evicted()
        )
        .unwrap();
    }
    if let Some(path) = args.get("metrics") {
        std::fs::write(path, metrics.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        writeln!(out, "metrics        {} entries -> {}", metrics.len(), path).unwrap();
    }
    Ok(())
}

fn parse_pattern(args: &Args, n: usize) -> Result<DestPattern, String> {
    match args.get("pattern") {
        None => Ok(DestPattern::Uniform),
        Some("uniform") => Ok(DestPattern::Uniform),
        Some("nonself") => Ok(DestPattern::UniformNonSelf),
        Some("diagonal") => Ok(DestPattern::Diagonal),
        Some(spec) if spec.starts_with("hotspot:") => {
            let parts: Vec<&str> = spec.split(':').collect();
            if parts.len() != 3 {
                return Err("hotspot pattern is hotspot:PORT:FRACTION".into());
            }
            let hot: usize = parts[1].parse().map_err(|_| "bad hotspot port")?;
            let fraction: f64 = parts[2].parse().map_err(|_| "bad hotspot fraction")?;
            if hot >= n {
                return Err(format!("hotspot port {hot} out of range"));
            }
            Ok(DestPattern::Hotspot { hot, fraction })
        }
        Some(other) => Err(format!("unknown pattern `{other}`")),
    }
}

fn sim_config(args: &Args, model: ModelKind) -> Result<SimConfig, String> {
    let n = args.get_parsed("ports", 16usize)?;
    let cfg = SimConfig {
        model,
        n,
        load: args.get_parsed("load", 0.8f64)?,
        pattern: parse_pattern(args, n)?,
        traffic: match (args.get("bursty"), args.flag("fast")) {
            (Some(_), false) => TrafficKind::Bursty {
                mean_burst: args.get_parsed("bursty", 16.0f64)?,
            },
            (Some(_), true) => TrafficKind::FastBursty {
                mean_burst: args.get_parsed("bursty", 16.0f64)?,
            },
            (None, true) => TrafficKind::FastBernoulli,
            (None, false) => TrafficKind::Bernoulli,
        },
        iterations: args.get_parsed("iterations", 4usize)?,
        islip_iterations: args.get_parsed("islip-iterations", 4usize)?,
        warmup_slots: args.get_parsed("warmup", 20_000u64)?,
        measure_slots: args.get_parsed("slots", 100_000u64)?,
        seed: args.get_parsed("seed", 0x1C_F2002u64)?,
        pq_cap: args.get_parsed("pq", 1000usize)?,
        voq_cap: args.get_parsed("voq", 256usize)?,
        outbuf_cap: args.get_parsed("outbuf", 256usize)?,
        max_latency_bucket: 4096,
        backend: match args.get("backend") {
            None => lcf_core::bitkern::Backend::default(),
            Some(name) => lcf_core::bitkern::Backend::from_name(name)
                .ok_or_else(|| format!("unknown backend `{name}` (want scalar|bitset)"))?,
        },
    };
    cfg.validate()?;
    Ok(cfg)
}

fn report_block(r: &SimReport) -> String {
    format!(
        "model          {}\n\
         load           {}\n\
         ports          {}\n\
         measured slots {}\n\
         generated      {}\n\
         delivered      {}\n\
         dropped        {}\n\
         throughput     {:.4}\n\
         mean delay     {:.3} slots\n\
         delay stddev   {:.3}\n\
         p50 / p99      {} / {} slots\n\
         jain index     {:.4}\n\
         seed           {}\n\
         backend        {}\n",
        r.model,
        r.load,
        r.n,
        r.slots,
        r.generated,
        r.delivered,
        r.dropped,
        r.throughput,
        r.mean_latency(),
        r.latency_std_dev,
        r.p50_latency,
        r.p99_latency,
        r.jain_index,
        r.seed,
        r.backend
    )
}

/// `lcf schedule`.
pub fn schedule(args: &Args) -> Result<String, String> {
    let n: usize = args.get_parsed("n", 4usize)?;
    let spec = args.require("requests")?;
    let pairs = parse_requests(n, spec)?;
    let requests = RequestMatrix::from_pairs(n, pairs);
    let name = args.get("scheduler").unwrap_or("lcf_central_rr");
    let kind =
        SchedulerKind::from_name(name).ok_or_else(|| format!("unknown scheduler `{name}`"))?;
    let iterations = args.get_parsed("iterations", 4usize)?;
    let seed = args.get_parsed("seed", 0u64)?;
    let cycles = args.get_parsed("cycles", 1usize)?;

    let mut sched = kind.build(n, iterations, seed);
    let mut out = String::new();
    writeln!(out, "request matrix ({n}x{n}), scheduler {name}:").unwrap();
    for i in 0..n {
        let row: String = (0..n)
            .map(|j| if requests.get(i, j) { '1' } else { '.' })
            .collect();
        writeln!(out, "  I{i:<2} {row}  (NRQ {})", requests.nrq(i)).unwrap();
    }
    for cycle in 0..cycles {
        let m = sched.schedule(&requests);
        writeln!(out, "cycle {cycle}: {} connections", m.size()).unwrap();
        for (i, j) in m.pairs() {
            writeln!(out, "  I{i} -> T{j}").unwrap();
        }
    }
    Ok(out)
}

/// `lcf simulate`.
pub fn simulate(args: &Args) -> Result<String, String> {
    let name = args.get("scheduler").unwrap_or("lcf_central_rr");
    // The weighted schedulers live outside the Fig. 12 registry; they get
    // a dedicated simulation loop with identical semantics. `mwm` is both
    // a weighted kind and a boolean registry kind — `simulate` prefers the
    // weighted (queue-length MWM) reading, which is the meaningful
    // simulation; the unit-weight reference stays reachable via `sweep`.
    if let Some(kind) = WeightedKind::from_name(name) {
        return simulate_weighted(args, kind);
    }
    let model =
        ModelKind::from_name(name).ok_or_else(|| format!("unknown scheduler/model `{name}`"))?;
    let cfg = sim_config(args, model)?;
    #[cfg(feature = "telemetry")]
    if wants_telemetry(args) {
        let cap = args.get_parsed("trace-cap", 0usize)?;
        let (report, telemetry) = lcf_sim::runner::run_sim_traced(&cfg, cap);
        let mut out = report_block(&report);
        export_telemetry(args, &telemetry.trace, &telemetry.metrics, &mut out)?;
        return Ok(out);
    }
    #[cfg(not(feature = "telemetry"))]
    if wants_telemetry(args) {
        return Err(NEEDS_TELEMETRY.into());
    }
    let report = run_sim(&cfg);
    Ok(report_block(&report))
}

/// `lcf serve`: the long-lived sharded engine. One JSON snapshot line per
/// measurement window (merged across shards, byte-deterministic), the
/// final drain line, then a human summary.
pub fn serve(args: &Args) -> Result<String, String> {
    let name = args.get("scheduler").unwrap_or("lcf_central_rr");
    let model =
        ModelKind::from_name(name).ok_or_else(|| format!("unknown scheduler/model `{name}`"))?;
    let base = sim_config(args, model)?;
    let script = match args.get("control") {
        None => lcf_sim::serve::ControlScript::empty(),
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            lcf_sim::serve::ControlScript::parse(&text)?
        }
    };
    let defaults = lcf_sim::serve::ServeConfig::new(base);
    let cfg = lcf_sim::serve::ServeConfig {
        shards: args.get_parsed("shards", defaults.shards)?,
        window_slots: args.get_parsed("window-slots", defaults.window_slots)?,
        windows: args.get_parsed("snapshots", defaults.windows)?,
        drain_deadline_slots: args.get_parsed("drain-deadline", defaults.drain_deadline_slots)?,
        occupancy_range: args.get_parsed("occupancy-range", defaults.occupancy_range)?,
        script,
        ..defaults
    };
    let outcome = lcf_sim::serve::serve(&cfg)?;
    let mut out = String::new();
    for line in &outcome.snapshots {
        writeln!(out, "{line}").unwrap();
    }
    writeln!(out, "{}", outcome.drain_json).unwrap();
    writeln!(
        out,
        "serve          {} shards x {} windows x {} slots; drained={}",
        cfg.shards, outcome.windows_run, cfg.window_slots, outcome.drained
    )
    .unwrap();
    Ok(out)
}

fn simulate_weighted(args: &Args, kind: WeightedKind) -> Result<String, String> {
    // Parse shared parameters via a placeholder model; the runner ignores
    // `cfg.model` on the weighted path and takes the scheduler from `kind`.
    let cfg = sim_config(args, ModelKind::Scheduler(SchedulerKind::LcfCentral))?;
    if wants_telemetry(args) {
        return Err("weighted schedulers record no decision traces; \
             drop --trace/--metrics"
            .into());
    }
    let report = lcf_sim::runner::run_sim_weighted(&cfg, kind);
    Ok(report_block(&report))
}

/// `lcf sweep`.
pub fn sweep(args: &Args) -> Result<String, String> {
    let loads = args
        .get_list::<f64>("loads")?
        .unwrap_or_else(|| vec![0.5, 0.8, 0.9, 0.95]);
    let models: Vec<ModelKind> = match args.get("schedulers") {
        None | Some("all") => ModelKind::figure12_lineup(),
        Some(list) => list
            .split(',')
            .map(|name| {
                ModelKind::from_name(name.trim())
                    .ok_or_else(|| format!("unknown scheduler `{name}`"))
            })
            .collect::<Result<_, _>>()?,
    };
    let mut configs = Vec::new();
    for model in &models {
        for &load in &loads {
            let mut cfg = sim_config(args, *model)?;
            cfg.load = load;
            cfg.validate()?;
            configs.push(cfg);
        }
    }
    let replications = args.get_parsed("replications", 1usize)?;
    if replications == 0 {
        return Err("--replications must be positive".into());
    }
    if replications > 1 {
        if wants_telemetry(args) {
            return Err("--replications does not combine with --trace/--metrics".into());
        }
        let reps: Vec<lcf_sim::runner::ReplicatedReport> = configs
            .iter()
            .map(|cfg| lcf_sim::runner::run_replicated(cfg, replications))
            .collect();
        return Ok(replicated_table(&models, &loads, &reps, replications));
    }
    #[cfg(feature = "telemetry")]
    if wants_telemetry(args) {
        return sweep_traced(args, &models, &loads, &configs);
    }
    #[cfg(not(feature = "telemetry"))]
    if wants_telemetry(args) {
        return Err(NEEDS_TELEMETRY.into());
    }
    let reports = lcf_sim::runner::sweep(&configs);
    Ok(sweep_table(&models, &loads, &reports))
}

fn replicated_table(
    models: &[ModelKind],
    loads: &[f64],
    reps: &[lcf_sim::runner::ReplicatedReport],
    replications: usize,
) -> String {
    let mut out = String::new();
    write!(out, "{:<16}", "model").unwrap();
    for load in loads {
        write!(out, " {load:>15}").unwrap();
    }
    out.push('\n');
    for (mi, model) in models.iter().enumerate() {
        write!(out, "{:<16}", model.name()).unwrap();
        for li in 0..loads.len() {
            let r = &reps[mi * loads.len() + li];
            write!(
                out,
                " {:>8.2}±{:<6.2}",
                r.mean_latency.mean, r.mean_latency.half_width
            )
            .unwrap();
        }
        out.push('\n');
    }
    writeln!(
        out,
        "(mean queueing delay in slots ± 95% CI, {replications} replications per point)"
    )
    .unwrap();
    out
}

fn sweep_table(models: &[ModelKind], loads: &[f64], reports: &[SimReport]) -> String {
    let mut out = String::new();
    write!(out, "{:<16}", "model").unwrap();
    for load in loads {
        write!(out, " {load:>9}").unwrap();
    }
    out.push('\n');
    for (mi, model) in models.iter().enumerate() {
        write!(out, "{:<16}", model.name()).unwrap();
        for li in 0..loads.len() {
            let r = &reports[mi * loads.len() + li];
            write!(out, " {:>9.2}", r.mean_latency()).unwrap();
        }
        out.push('\n');
    }
    out.push_str("(mean queueing delay in slots)\n");
    out
}

/// The traced sweep: same table, plus `--trace` (per-config traces
/// concatenated behind `sweep_config` marker events) and `--metrics`
/// (the batch's merged registry).
#[cfg(feature = "telemetry")]
fn sweep_traced(
    args: &Args,
    models: &[ModelKind],
    loads: &[f64],
    configs: &[SimConfig],
) -> Result<String, String> {
    use lcf_telemetry::Event;

    // Sweeps cover many configs, so the per-config trace is bounded by
    // default — the metrics registry carries the aggregate story.
    let cap = args.get_parsed("trace-cap", 4096usize)?;
    let (outcomes, merged) = lcf_sim::runner::try_sweep_traced(configs, cap);
    let mut reports = Vec::with_capacity(outcomes.len());
    let mut telemetries = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        let (report, telemetry) = outcome.map_err(|e| e.to_string())?;
        reports.push(report);
        telemetries.push(telemetry);
    }

    let mut out = sweep_table(models, loads, &reports);
    if let Some(path) = args.get("trace") {
        let mut jsonl = String::new();
        let mut events = 0usize;
        for (idx, (report, telemetry)) in reports.iter().zip(&telemetries).enumerate() {
            let marker = Event::new(0, "sweep_config")
                .field("index", idx)
                .field("model", report.model.clone())
                .field("load", report.load);
            jsonl.push_str(&marker.to_json());
            jsonl.push('\n');
            jsonl.push_str(&telemetry.trace.to_jsonl());
            events += telemetry.trace.len();
        }
        std::fs::write(path, jsonl).map_err(|e| format!("cannot write {path}: {e}"))?;
        writeln!(
            out,
            "trace          {events} events across {} configs -> {path}",
            reports.len()
        )
        .unwrap();
    }
    if let Some(path) = args.get("metrics") {
        std::fs::write(path, merged.to_json()).map_err(|e| format!("cannot write {path}: {e}"))?;
        writeln!(out, "metrics        {} entries -> {}", merged.len(), path).unwrap();
    }
    Ok(out)
}

/// `lcf trace` — replay one seed and pretty-print the scheduler's
/// decisions. Small defaults (4 ports, 12 slots, no warm-up) keep the
/// output human-sized; every knob of `simulate` is accepted.
#[cfg(feature = "telemetry")]
pub fn trace(args: &Args) -> Result<String, String> {
    let name = args.get("scheduler").unwrap_or("lcf_central_rr");
    let model =
        ModelKind::from_name(name).ok_or_else(|| format!("unknown scheduler/model `{name}`"))?;
    if model == ModelKind::OutputBuffered {
        return Err("the output-buffered model has no scheduler to trace".into());
    }
    let n = args.get_parsed("ports", 4usize)?;
    let cfg = SimConfig {
        model,
        n,
        load: args.get_parsed("load", 0.85f64)?,
        pattern: parse_pattern(args, n)?,
        iterations: args.get_parsed("iterations", 4usize)?,
        islip_iterations: args.get_parsed("islip-iterations", 4usize)?,
        warmup_slots: args.get_parsed("warmup", 0u64)?,
        measure_slots: args.get_parsed("slots", 12u64)?,
        seed: args.get_parsed("seed", 0x601Du64)?,
        backend: match args.get("backend") {
            None => lcf_core::bitkern::Backend::default(),
            Some(b) => lcf_core::bitkern::Backend::from_name(b)
                .ok_or_else(|| format!("unknown backend `{b}` (want scalar|bitset)"))?,
        },
        ..SimConfig::paper_default()
    };
    cfg.validate()?;

    let (report, telemetry) = lcf_sim::runner::run_sim_traced(&cfg, 0);
    let mut out = String::new();
    writeln!(
        out,
        "{} decisions, {} ports, load {}, seed {} ({} slots):",
        report.model, report.n, report.load, report.seed, report.slots
    )
    .unwrap();
    for event in telemetry.trace.iter() {
        writeln!(out, "{}", pretty_event(event)).unwrap();
    }
    writeln!(
        out,
        "{} events; delivered {} of {} generated",
        telemetry.trace.len(),
        report.delivered,
        report.generated
    )
    .unwrap();
    Ok(out)
}

/// `lcf trace` in a build without the feature.
#[cfg(not(feature = "telemetry"))]
pub fn trace(_args: &Args) -> Result<String, String> {
    Err(NEEDS_TELEMETRY.into())
}

/// Renders one trace event as a human-readable line. Unknown kinds fall
/// back to their JSON form, so the printer never loses information.
#[cfg(feature = "telemetry")]
fn pretty_event(e: &lcf_telemetry::Event) -> String {
    use lcf_telemetry::Value;
    let get = |name: &str| e.fields.iter().find(|(k, _)| *k == name).map(|(_, v)| v);
    let num = |name: &str| match get(name) {
        Some(Value::U64(v)) => *v,
        _ => 0,
    };
    let pairs = |name: &str| -> String {
        let Some(Value::Seq(seq)) = get(name) else {
            return String::new();
        };
        seq.iter()
            .map(|p| match p {
                Value::Seq(ij) if ij.len() == 2 => {
                    format!("({},{})", ij[0].to_json(), ij[1].to_json())
                }
                other => other.to_json(),
            })
            .collect::<Vec<_>>()
            .join(" ")
    };
    match e.kind {
        "grant" => {
            let reason = match get("reason") {
                Some(Value::Str(s)) => s.as_str(),
                _ => "?",
            };
            let losers = pairs("losers");
            let beat = if losers.is_empty() {
                String::new()
            } else {
                format!("  beat (input,nrq): {losers}")
            };
            format!(
                "slot {:>4}  T{} <- I{}  {:<16} nrq {}{}",
                e.slot,
                num("output"),
                num("input"),
                reason,
                num("nrq"),
                beat
            )
        }
        "pre_grant" => format!(
            "slot {:>4}  T{} <- I{}  rr pre-grant",
            e.slot,
            num("output"),
            num("input")
        ),
        "iteration" => format!(
            "slot {:>4}  iter {}: requests {} | grants {} | accepts {}",
            e.slot,
            num("iter"),
            pairs("requests"),
            pairs("grants"),
            pairs("accepts")
        ),
        "drop_pq" => format!(
            "slot {:>4}  DROP input {} (dst {}) — packet queue full",
            e.slot,
            num("input"),
            num("dst")
        ),
        _ => format!("slot {:>4}  {}", e.slot, e.to_json()),
    }
}

/// `lcf hw`.
pub fn hw(args: &Args) -> Result<String, String> {
    let n: usize = args.get_parsed("ports", 16usize)?;
    if n == 0 {
        return Err("--ports must be positive".into());
    }
    let clock_mhz: f64 = args.get_parsed("clock-mhz", 66.0f64)?;
    let gates = GateModel::new(n);
    let timing = TimingModel::new(n, clock_mhz * 1e6);
    let mut out = String::new();
    writeln!(out, "central LCF scheduler, n = {n}, clock {clock_mhz} MHz").unwrap();
    writeln!(
        out,
        "gates:      {} distributed ({} x {}) + {} central = {}",
        gates.distributed().gates,
        n,
        gates.slice().gates,
        gates.central().gates,
        gates.total().gates
    )
    .unwrap();
    writeln!(
        out,
        "registers:  {} distributed + {} central = {}",
        gates.distributed().regs,
        gates.central().regs,
        gates.total().regs
    )
    .unwrap();
    for t in timing.table2() {
        writeln!(
            out,
            "timing:     {:<24} {:>4} cycles  {:>8.0} ns",
            t.task, t.cycles, t.time_ns
        )
        .unwrap();
    }
    writeln!(
        out,
        "comm/cycle: central {} bits, distributed (4 iters) {} bits ({:.1}x)",
        comm::central_bits(n),
        comm::distributed_bits(n, 4),
        comm::overhead_ratio(n, 4)
    )
    .unwrap();
    Ok(out)
}

/// `lcf fabric`.
pub fn fabric(args: &Args) -> Result<String, String> {
    let n: usize = args.get_parsed("ports", 64usize)?;
    if n < 2 {
        return Err("--ports must be at least 2".into());
    }
    let mut out = String::new();
    writeln!(out, "{n}-port fabrics:").unwrap();
    writeln!(out, "  crossbar: {} crosspoints", n * n).unwrap();
    match optimal_clos(n) {
        Some(best) => {
            writeln!(
                out,
                "  best rearrangeable Clos: C({}, {}, {}) = {} crosspoints ({:.2}x saving)",
                best.m,
                best.k,
                best.r,
                best.crosspoints(),
                (n * n) as f64 / best.crosspoints() as f64
            )
            .unwrap();
            let strict = ClosNetwork::new(2 * best.k - 1, best.k, best.r);
            writeln!(
                out,
                "  strictly non-blocking:  C({}, {}, {}) = {} crosspoints",
                strict.m,
                strict.k,
                strict.r,
                strict.crosspoints()
            )
            .unwrap();
        }
        None => writeln!(out, "  no 3-stage Clos beats the crossbar at this size").unwrap(),
    }
    Ok(out)
}

/// `lcf clint`.
pub fn clint(args: &Args) -> Result<String, String> {
    let cfg = lcf_clint::sim::ClintConfig {
        n: args.get_parsed("hosts", 16usize)?,
        bulk_load: args.get_parsed("bulk-load", 0.6f64)?,
        quick_load: args.get_parsed("quick-load", 0.1f64)?,
        cfg_error_rate: args.get_parsed("error-rate", 0.0f64)?,
        gnt_error_rate: args.get_parsed("gnt-error-rate", 0.0f64)?,
        slots: args.get_parsed("slots", 20_000u64)?,
        seed: args.get_parsed("seed", 0xC11A7u64)?,
    };
    if cfg.n == 0 || cfg.n > 16 {
        return Err("--hosts must be 1..=16".into());
    }
    let r = lcf_clint::sim::ClintSim::new(cfg.clone()).run();
    Ok(format!(
        "clint: {} hosts, {} slots, bulk load {}, quick load {}, cfg error rate {}\n\
         bulk:  generated {}, delivered {}, mean delay {:.2} slots, acks {}\n\
         quick: generated {}, delivered {}, mean delay {:.2} slots, collisions {}\n\
         control plane: {} config packets rejected by CRC\n",
        cfg.n,
        cfg.slots,
        cfg.bulk_load,
        cfg.quick_load,
        cfg.cfg_error_rate,
        r.bulk_generated,
        r.bulk_delivered,
        r.bulk_mean_latency,
        r.acks_received,
        r.quick_generated,
        r.quick_delivered,
        r.quick_mean_latency,
        r.quick_collisions,
        r.cfg_crc_errors
    ))
}

/// `lcf reliable`.
pub fn reliable(args: &Args) -> Result<String, String> {
    let loss = args.get_parsed("loss", 0.1f64)?;
    let cfg = lcf_clint::reliable::ReliableConfig {
        n: args.get_parsed("hosts", 16usize)?,
        offered_load: args.get_parsed("load", 0.3f64)?,
        breq_loss: args.get_parsed("breq-loss", loss)?,
        back_loss: args.get_parsed("back-loss", loss)?,
        timeout: args.get_parsed("timeout", 16u64)?,
        slots: args.get_parsed("slots", 20_000u64)?,
        seed: args.get_parsed("seed", 0x5EC5u64)?,
    };
    if cfg.n == 0 || cfg.n > 16 {
        return Err("--hosts must be 1..=16".into());
    }
    let r = lcf_clint::reliable::ReliableSim::new(cfg.clone()).run();
    Ok(format!(
        "reliable transfers: {} hosts, {} slots, load {}, breq loss {}, ack loss {}\n\
         enqueued {}   delivered (unique) {}   completed {}\n\
         duplicates suppressed {}   retransmissions {}   in flight at end {}\n\
         mean delivery latency {:.2} slots\n",
        cfg.n,
        cfg.slots,
        cfg.offered_load,
        cfg.breq_loss,
        cfg.back_loss,
        r.enqueued,
        r.delivered_unique,
        r.completed,
        r.duplicates_suppressed,
        r.retransmissions,
        r.in_flight_at_end,
        r.mean_delivery_latency
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Args {
        Args::parse(&argv.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn schedule_figure3() {
        let args = parse(&[
            "--n",
            "4",
            "--requests",
            "0:1,2;1:0,2,3;2:0,2,3;3:1",
            "--scheduler",
            "lcf_central_rr",
        ]);
        let out = schedule(&args).unwrap();
        // Fresh pointer state (I = 0, J = 0): the Fig. 3 matrix schedules
        // T0 -> I1, T1 -> I3, T2 -> I2 (round-robin position), T3 unmatched.
        assert!(out.contains("3 connections"), "{out}");
        assert!(out.contains("I1 -> T0"), "{out}");
        assert!(out.contains("I3 -> T1"), "{out}");
    }

    #[test]
    fn schedule_rejects_unknown_scheduler() {
        let args = parse(&["--requests", "0:1", "--scheduler", "magic"]);
        assert!(schedule(&args).unwrap_err().contains("magic"));
    }

    #[test]
    fn simulate_produces_report() {
        let args = parse(&[
            "--scheduler",
            "islip",
            "--load",
            "0.5",
            "--ports",
            "8",
            "--slots",
            "5000",
            "--warmup",
            "1000",
        ]);
        let out = simulate(&args).unwrap();
        assert!(out.contains("model          islip"));
        assert!(out.contains("throughput"));
    }

    #[test]
    fn simulate_outbuf_model() {
        let args = parse(&[
            "--scheduler",
            "outbuf",
            "--load",
            "0.5",
            "--ports",
            "8",
            "--slots",
            "3000",
            "--warmup",
            "500",
        ]);
        assert!(simulate(&args).unwrap().contains("outbuf"));
    }

    #[test]
    fn sweep_renders_table() {
        let args = parse(&[
            "--loads",
            "0.3,0.6",
            "--schedulers",
            "lcf_central,pim",
            "--ports",
            "8",
            "--slots",
            "3000",
            "--warmup",
            "500",
        ]);
        let out = sweep(&args).unwrap();
        assert!(out.contains("lcf_central"));
        assert!(out.contains("pim"));
    }

    #[test]
    fn sweep_with_replications_renders_cis() {
        let args = parse(&[
            "--loads",
            "0.5",
            "--schedulers",
            "lcf_central",
            "--ports",
            "8",
            "--slots",
            "2000",
            "--warmup",
            "500",
            "--replications",
            "3",
            "--fast",
        ]);
        let out = sweep(&args).unwrap();
        assert!(out.contains('±'), "{out}");
        assert!(out.contains("3 replications"), "{out}");
        let bad = parse(&["--replications", "0"]);
        assert!(sweep(&bad).unwrap_err().contains("replications"));
    }

    #[test]
    fn fast_flag_selects_fast_generators() {
        let args = parse(&["--fast"]);
        let cfg = sim_config(&args, ModelKind::Scheduler(SchedulerKind::LcfCentral)).unwrap();
        assert_eq!(cfg.traffic, TrafficKind::FastBernoulli);
        let args = parse(&["--fast", "--bursty", "8"]);
        let cfg = sim_config(&args, ModelKind::Scheduler(SchedulerKind::LcfCentral)).unwrap();
        assert_eq!(cfg.traffic, TrafficKind::FastBursty { mean_burst: 8.0 });
        let args = parse(&[]);
        let cfg = sim_config(&args, ModelKind::Scheduler(SchedulerKind::LcfCentral)).unwrap();
        assert_eq!(cfg.traffic, TrafficKind::Bernoulli);
    }

    #[test]
    fn hw_summary_n16() {
        let out = hw(&parse(&[])).unwrap();
        assert!(out.contains("7967"));
        assert!(out.contains("1258"));
    }

    #[test]
    fn fabric_summary() {
        let out = fabric(&parse(&["--ports", "64"])).unwrap();
        assert!(out.contains("4096 crosspoints"));
        assert!(out.contains("Clos"));
    }

    #[test]
    fn clint_summary() {
        let out = clint(&parse(&["--slots", "2000", "--hosts", "8"])).unwrap();
        assert!(out.contains("bulk:"));
        assert!(out.contains("quick:"));
    }

    #[test]
    fn pattern_parsing() {
        let args = parse(&["--pattern", "hotspot:3:0.25"]);
        assert_eq!(
            parse_pattern(&args, 8).unwrap(),
            DestPattern::Hotspot {
                hot: 3,
                fraction: 0.25
            }
        );
        let bad = parse(&["--pattern", "hotspot:99:0.25"]);
        assert!(parse_pattern(&bad, 8).is_err());
        let unknown = parse(&["--pattern", "zipf"]);
        assert!(parse_pattern(&unknown, 8).is_err());
    }

    #[test]
    fn simulate_weighted_schedulers() {
        for name in ["lqf", "ocf", "mwm", "nwgreedy"] {
            let args = parse(&[
                "--scheduler",
                name,
                "--load",
                "0.6",
                "--ports",
                "8",
                "--slots",
                "3000",
                "--warmup",
                "500",
            ]);
            let out = simulate(&args).unwrap();
            assert!(out.contains(&format!("model          {name}")), "{out}");
            assert!(out.contains("throughput"));
        }
    }

    #[test]
    fn simulate_weighted_rejects_telemetry_flags() {
        let args = parse(&[
            "--scheduler",
            "mwm",
            "--slots",
            "100",
            "--trace",
            "/tmp/never_written.jsonl",
        ]);
        let err = simulate(&args).unwrap_err();
        assert!(err.contains("no decision traces"), "{err}");
    }

    #[test]
    fn reliable_summary() {
        let out = reliable(&parse(&[
            "--loss", "0.05", "--slots", "2000", "--hosts", "8",
        ]))
        .unwrap();
        assert!(out.contains("retransmissions"));
        assert!(out.contains("delivered (unique)"));
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn trace_pretty_prints_decisions() {
        let out = trace(&parse(&["--slots", "6", "--seed", "7"])).unwrap();
        assert!(out.contains("lcf_central_rr decisions"), "{out}");
        // At least one grant line with a spelled-out reason.
        assert!(
            ["only_choice", "rr_position", "min_count", "tie_break"]
                .iter()
                .any(|r| out.contains(r)),
            "{out}"
        );
        assert!(out.contains("events; delivered"), "{out}");
        // Iterative schedulers print per-iteration request/grant/accept sets.
        let islip = trace(&parse(&["--scheduler", "islip", "--slots", "4"])).unwrap();
        assert!(islip.contains("iter 0:"), "{islip}");
        assert!(islip.contains("accepts"), "{islip}");
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn simulate_exports_trace_and_metrics() {
        let dir = std::env::temp_dir();
        let tp = dir.join("lcf_cli_test_trace.jsonl");
        let mp = dir.join("lcf_cli_test_metrics.json");
        let args = parse(&[
            "--scheduler",
            "lcf_central_rr",
            "--load",
            "0.5",
            "--ports",
            "4",
            "--slots",
            "200",
            "--warmup",
            "50",
            "--trace",
            tp.to_str().unwrap(),
            "--metrics",
            mp.to_str().unwrap(),
        ]);
        let out = simulate(&args).unwrap();
        assert!(out.contains("trace "), "{out}");
        assert!(out.contains("metrics "), "{out}");
        let trace = std::fs::read_to_string(&tp).unwrap();
        assert!(!trace.is_empty());
        assert!(
            trace.lines().all(|l| l.starts_with("{\"slot\":")),
            "bad JSONL"
        );
        let metrics = std::fs::read_to_string(&mp).unwrap();
        assert!(metrics.contains("\"sim.slots\":200"), "{metrics}");
        let _ = std::fs::remove_file(&tp);
        let _ = std::fs::remove_file(&mp);
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn telemetry_surfaces_explain_the_missing_feature() {
        let err = trace(&parse(&[])).unwrap_err();
        assert!(err.contains("--features telemetry"), "{err}");
        let args = parse(&[
            "--scheduler",
            "islip",
            "--slots",
            "100",
            "--warmup",
            "10",
            "--trace",
            "/tmp/never-written.jsonl",
        ]);
        let err = simulate(&args).unwrap_err();
        assert!(err.contains("--features telemetry"), "{err}");
    }

    #[test]
    fn serve_emits_deterministic_snapshots_and_drain() {
        let argv = [
            "--scheduler",
            "lcf_central_rr",
            "--ports",
            "4",
            "--load",
            "0.6",
            "--warmup",
            "200",
            "--shards",
            "2",
            "--window-slots",
            "250",
            "--snapshots",
            "2",
        ];
        let out = serve(&parse(&argv)).unwrap();
        assert!(out.contains("{\"window\":0,"), "{out}");
        assert!(out.contains("{\"window\":1,"), "{out}");
        assert!(out.contains("\"drain\":"), "{out}");
        assert!(out.contains("drained=true"), "{out}");
        let again = serve(&parse(&argv)).unwrap();
        assert_eq!(out, again, "serve output must be run-to-run deterministic");
    }

    #[test]
    fn serve_applies_control_script() {
        let dir = std::env::temp_dir();
        let script = dir.join("lcf_cli_test_serve_control.txt");
        std::fs::write(&script, "at 1 scheduler islip\nat 1 load 0.3\n").unwrap();
        let out = serve(&parse(&[
            "--scheduler",
            "lcf_central_rr",
            "--ports",
            "4",
            "--load",
            "0.6",
            "--warmup",
            "100",
            "--shards",
            "2",
            "--window-slots",
            "200",
            "--snapshots",
            "2",
            "--control",
            script.to_str().unwrap(),
        ]))
        .unwrap();
        let _ = std::fs::remove_file(&script);
        assert!(out.contains("{\"window\":1,"), "{out}");
        assert!(out.contains("drained=true"), "{out}");
    }

    #[test]
    fn serve_rejects_bad_control_script() {
        let dir = std::env::temp_dir();
        let script = dir.join("lcf_cli_test_serve_bad_control.txt");
        std::fs::write(&script, "at 1 scheduler nope\n").unwrap();
        let err = serve(&parse(&["--control", script.to_str().unwrap()])).unwrap_err();
        let _ = std::fs::remove_file(&script);
        assert!(err.contains("unknown scheduler"), "{err}");
    }

    #[test]
    fn run_dispatches() {
        let out = crate::run(&["help".to_string()]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(crate::run(&["frobnicate".to_string()]).is_err());
        assert!(crate::run(&[]).unwrap().contains("USAGE"));
    }
}
