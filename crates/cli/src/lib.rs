//! # lcf-cli — command-line interface to the LCF toolkit
//!
//! Installs a single binary, `lcf`, with subcommands:
//!
//! ```text
//! lcf schedule  --requests "0:1,2;1:0,2,3;2:0,2,3;3:1" [--scheduler lcf_central_rr]
//! lcf simulate  --scheduler islip --load 0.8 [--ports 16] [--slots 100000]
//! lcf sweep     --loads 0.5,0.8,0.9 [--schedulers all]
//! lcf serve     --shards 4 --window-slots 5000 --snapshots 8 [--control script.txt]
//! lcf trace     --scheduler lcf_central_rr --ports 4 --slots 12
//! lcf hw        [--ports 16] [--clock-mhz 66]
//! lcf fabric    --ports 64
//! lcf clint     --bulk-load 0.5 --quick-load 0.2 [--slots 20000]
//! lcf reliable  --loss 0.1 [--load 0.3] [--slots 20000]
//! ```
//!
//! Every command is a pure function from parsed arguments to an output
//! string (see [`cmd`]), which keeps the whole surface unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod cmd;

/// Entry point shared by the binary and the tests.
pub fn run(argv: &[String]) -> Result<String, String> {
    let Some(command) = argv.first() else {
        return Ok(cmd::help());
    };
    let rest = args::Args::parse(&argv[1..])?;
    match command.as_str() {
        "schedule" => cmd::schedule(&rest),
        "simulate" => cmd::simulate(&rest),
        "sweep" => cmd::sweep(&rest),
        "serve" => cmd::serve(&rest),
        "trace" => cmd::trace(&rest),
        "hw" => cmd::hw(&rest),
        "fabric" => cmd::fabric(&rest),
        "clint" => cmd::clint(&rest),
        "reliable" => cmd::reliable(&rest),
        "help" | "--help" | "-h" => Ok(cmd::help()),
        other => Err(format!("unknown command `{other}`; try `lcf help`")),
    }
}
