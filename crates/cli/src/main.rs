//! The `lcf` binary: thin wrapper over [`lcf_cli::run`].

#![forbid(unsafe_code)]

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match lcf_cli::run(&argv) {
        Ok(output) => print!("{output}"),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}
