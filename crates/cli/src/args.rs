//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::BTreeMap;

/// Parsed `--key value` pairs plus boolean flags.
#[derive(Clone, Debug, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses an argument list. Every `--key` either captures the following
    /// token as its value or, if the next token is another option (or
    /// missing), becomes a boolean flag.
    pub fn parse(argv: &[String]) -> Result<Args, String> {
        let mut args = Args::default();
        let mut i = 0;
        while i < argv.len() {
            let tok = &argv[i];
            let Some(key) = tok.strip_prefix("--") else {
                return Err(format!("unexpected positional argument `{tok}`"));
            };
            if key.is_empty() {
                return Err("empty option name `--`".into());
            }
            match argv.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    args.values.insert(key.to_string(), v.clone());
                    i += 2;
                }
                _ => {
                    args.flags.push(key.to_string());
                    i += 1;
                }
            }
        }
        Ok(args)
    }

    /// The raw value of `--key`, if given.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// Whether the boolean flag `--key` was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// A parsed value with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("cannot parse --{key} value `{raw}`")),
        }
    }

    /// A required value.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required --{key}"))
    }

    /// A comma-separated list of parsed values.
    pub fn get_list<T: std::str::FromStr>(&self, key: &str) -> Result<Option<Vec<T>>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(raw) => raw
                .split(',')
                .map(|part| {
                    part.trim()
                        .parse()
                        .map_err(|_| format!("cannot parse --{key} element `{part}`"))
                })
                .collect::<Result<Vec<T>, String>>()
                .map(Some),
        }
    }
}

/// Parses a request-matrix spec: `"0:1,2;1:0,2,3;3:1"` means requester 0
/// requests resources 1 and 2, requester 1 requests 0, 2 and 3, requester 3
/// requests 1. Requesters may appear in any order; omitted requesters have
/// no requests.
pub fn parse_requests(n: usize, spec: &str) -> Result<Vec<(usize, usize)>, String> {
    let mut pairs = Vec::new();
    for group in spec.split(';').filter(|g| !g.trim().is_empty()) {
        let (req, resources) = group
            .split_once(':')
            .ok_or_else(|| format!("malformed group `{group}` (want `i:j,k`)"))?;
        let i: usize = req
            .trim()
            .parse()
            .map_err(|_| format!("bad requester `{req}`"))?;
        if i >= n {
            return Err(format!("requester {i} out of range for n = {n}"));
        }
        for r in resources.split(',').filter(|r| !r.trim().is_empty()) {
            let j: usize = r
                .trim()
                .parse()
                .map_err(|_| format!("bad resource `{r}`"))?;
            if j >= n {
                return Err(format!("resource {j} out of range for n = {n}"));
            }
            pairs.push((i, j));
        }
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_values_and_flags() {
        let a = Args::parse(&argv(&["--load", "0.8", "--quick", "--ports", "16"])).unwrap();
        assert_eq!(a.get("load"), Some("0.8"));
        assert!(a.flag("quick"));
        assert_eq!(a.get_parsed::<usize>("ports", 0).unwrap(), 16);
        assert_eq!(a.get_parsed::<u64>("slots", 99).unwrap(), 99);
    }

    #[test]
    fn rejects_positional() {
        assert!(Args::parse(&argv(&["oops"])).is_err());
    }

    #[test]
    fn negative_looking_values_vs_flags() {
        // a value starting with `--` is treated as the next option
        let a = Args::parse(&argv(&["--quick", "--seed", "7"])).unwrap();
        assert!(a.flag("quick"));
        assert_eq!(a.get("seed"), Some("7"));
    }

    #[test]
    fn require_and_lists() {
        let a = Args::parse(&argv(&["--loads", "0.1, 0.5,0.9"])).unwrap();
        assert_eq!(
            a.get_list::<f64>("loads").unwrap(),
            Some(vec![0.1, 0.5, 0.9])
        );
        assert!(a.require("nope").is_err());
    }

    #[test]
    fn parse_error_messages() {
        let a = Args::parse(&argv(&["--ports", "many"])).unwrap();
        let err = a.get_parsed::<usize>("ports", 1).unwrap_err();
        assert!(err.contains("--ports"));
    }

    #[test]
    fn request_spec_roundtrip() {
        let pairs = parse_requests(4, "0:1,2;1:0,2,3;3:1").unwrap();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 0), (1, 2), (1, 3), (3, 1)]);
    }

    #[test]
    fn request_spec_errors() {
        assert!(parse_requests(4, "9:1").is_err());
        assert!(parse_requests(4, "0:9").is_err());
        assert!(parse_requests(4, "garbage").is_err());
        assert_eq!(parse_requests(4, "").unwrap(), vec![]);
    }
}
