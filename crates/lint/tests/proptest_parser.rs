//! Property tests for the lint engine's lexer and item parser.
//!
//! Two robustness layers:
//!
//! 1. **Never panic, on anything.** The analyzer runs over every file in
//!    the workspace walk, including malformed or exotic input; random
//!    character soup (heavy on quotes, comment markers and delimiters —
//!    the lexer's hard cases) and randomly truncated real-looking source
//!    must never panic the lexer, the parser, or the full rule pass.
//!
//! 2. **Recover the structure we generated.** Random well-formed item
//!    trees (fns nested in impls/mods, cfg gates, attributes, string and
//!    comment decoys) are generated together with their expected shape,
//!    and the parser must recover exactly the fn names, owners and gates
//!    we planted.

use lcf_lint::lex::{tokenize, Tok};
use lcf_lint::parse::parse;
use lcf_lint::{lint_source, RuleSet};
use proptest::prelude::*;

/// Characters weighted toward the lexer's tricky cases: string/char
/// delimiters, raw-string hashes, comment markers, braces, and a few
/// ident/keyword letters.
const SOUP: &[char] = &[
    '"', '\'', '#', 'r', 'b', '/', '*', '{', '}', '(', ')', '[', ']', ';', ',', ':', '<', '>', '-',
    '!', '\\', '\n', ' ', 'f', 'n', 'a', '_', '0', '9', 'i', 'm', 'p', 'l',
];

fn soup_string(picks: &[usize]) -> String {
    picks.iter().map(|&i| SOUP[i % SOUP.len()]).collect()
}

/// A deterministic "real-looking" source corpus to truncate at arbitrary
/// byte boundaries (truncation is how half-written files reach the lint).
const CORPUS: &str = r##"//! Module docs with `code` and "quotes".
#![forbid(unsafe_code)]
use std::time::Duration; // lint:allow(wall-clock): not actually a clock
#[cfg(feature = "telemetry")]
pub mod probes;
pub struct S<'a> { x: &'a [u8; 4] }
impl<'a, F: FnMut() -> u32> Iterator for S<'a> {
    type Item = u32;
    fn next(&mut self) -> Option<u32> { None }
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let s = b"bytes"; let r = r#"raw " string"#; panic!("{s:?} {r}"); }
}
fn live(n: usize) -> usize {
    let c = 'x'; let esc = '\''; let _ = c == esc;
    'outer: loop { if n > 1 { break 'outer; } }
    n + 1
}
"##;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Layer 1a: character soup never panics anything.
    #[test]
    fn soup_never_panics(picks in proptest::collection::vec(0usize..64, 0..160)) {
        let src = soup_string(&picks);
        let (toks, _comments) = tokenize(&src);
        let _parsed = parse(&toks);
        let _findings = lint_source("soup.rs", &src, &RuleSet::all());
    }

    /// Layer 1b: truncating real-looking source at any char boundary never
    /// panics, and the surviving prefix still lexes into sane tokens.
    #[test]
    fn truncation_never_panics(cut in 0usize..2048) {
        let chars: Vec<char> = CORPUS.chars().collect();
        let src: String = chars[..cut.min(chars.len())].iter().collect();
        let (toks, _) = tokenize(&src);
        let _parsed = parse(&toks);
        let _findings = lint_source("cut.rs", &src, &RuleSet::all());
        // Line numbers never exceed the physical line count.
        let lines = src.lines().count().max(1);
        prop_assert!(toks.iter().all(|t| t.line >= 1 && t.line <= lines));
    }

    /// Layer 2: a generated item tree is recovered exactly — names,
    /// owners, and cfg gates.
    #[test]
    fn generated_items_are_recovered(
        shape in proptest::collection::vec((0usize..4, 0usize..3, 0usize..2), 1..12),
    ) {
        // Each entry plants one fn: `(container, gate, decoy)` where
        // container 0 = free fn, 1 = impl fn, 2 = trait default fn,
        // 3 = fn inside an inline mod; gate 0 = none, 1 = cfg(test),
        // 2 = cfg(feature = "telemetry"); decoy 1 sprinkles a comment and
        // a string mentioning `fn fake()` that must NOT be recovered.
        let mut src = String::new();
        let mut expected: Vec<(String, Option<String>, bool, bool)> = Vec::new();
        for (k, &(container, gate, decoy)) in shape.iter().enumerate() {
            let name = format!("f{k}");
            let attr = match gate {
                1 => "#[cfg(test)]\n",
                2 => "#[cfg(feature = \"telemetry\")]\n",
                _ => "",
            };
            if decoy == 1 {
                src.push_str("// decoy: fn fake() { panic!() }\n");
                src.push_str("const DECOY: &str = \"fn fake2() {\";\n");
            }
            let (snippet, owner) = match container {
                1 => (
                    format!("impl Own{k} {{ {attr}fn {name}(&self) -> usize {{ {k} }} }}\n"),
                    Some(format!("Own{k}")),
                ),
                2 => (
                    format!("trait Tr{k} {{ {attr}fn {name}(&self) -> usize {{ {k} }} }}\n"),
                    None,
                ),
                3 => (
                    format!("{attr}mod m{k} {{ fn {name}() -> usize {{ {k} }} }}\n"),
                    None,
                ),
                _ => (format!("{attr}fn {name}() -> usize {{ {k} }}\n"), None),
            };
            src.push_str(&snippet);
            // For container 3 the gate sits on the mod and is inherited.
            expected.push((name, owner, gate == 1, gate == 2));
        }
        let (toks, _) = tokenize(&src);
        let parsed = parse(&toks);
        let got: Vec<(String, Option<String>, bool, bool)> = parsed
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.owner.clone(), f.gates.test, f.gates.telemetry))
            .collect();
        prop_assert_eq!(got, expected, "source was:\n{}", src);
    }

    /// Idents planted outside strings/comments always surface as tokens;
    /// idents planted inside them never do.
    #[test]
    fn ident_visibility_respects_literals(k in 0usize..1000) {
        let live = format!("live_{k}");
        let dead = format!("dead_{k}");
        let src = format!(
            "// {dead} in a comment\n/* {dead} in a block */\nconst S: &str = \"{dead}\";\nfn {live}() {{}}\n"
        );
        let (toks, _) = tokenize(&src);
        let has = |name: &str| toks.iter().any(|t| matches!(&t.tok, Tok::Ident(i) if i == name));
        prop_assert!(has(&live));
        prop_assert!(!has(&dead));
        // ... but the string content is preserved as a Str token.
        prop_assert!(toks.iter().any(|t| matches!(&t.tok, Tok::Str(s) if s == &dead)));
    }
}
