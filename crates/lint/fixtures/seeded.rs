//! Seeded-violation fixture for the `lcf-lint` self-test.
//!
//! This file is never compiled; it exists so `cargo run -p lcf-lint -- --self-test`
//! (and `cargo run -p lcf-lint -- crates/lint/fixtures/seeded.rs`, which must
//! exit non-zero) can prove every rule family actually fires — and that the
//! tagged/gated negative cases do not. It deliberately lacks
//! `#![forbid(unsafe_code)]` to trip the forbid-unsafe rule.

use std::collections::HashMap; // trips hash-collections
use std::time::Instant; // trips wall-clock

/// Trips no-panic (unwrap and panic!) and truncating-cast.
pub fn seeded(port: usize, m: &HashMap<usize, usize>) -> u8 {
    let _t = Instant::now();
    if port > 255 {
        panic!("port out of range");
    }
    let _narrow = *m.get(&port).unwrap() as u32;
    // lint:allow(truncating-cast): fixture demonstrates a correctly justified tag
    let allowed = port as u16;
    (allowed & 0xFF) as u8
}

/// Trips hot-path-alloc directly (per-slot allocation in a hot fn body).
pub fn schedule_into(requests: &[bool], out: &mut Vec<usize>) {
    let scratch = vec![0usize; requests.len()];
    out.extend(scratch);
    hidden_helper(out);
}

/// Trips call-graph hot-path-alloc: the allocation is hidden one call
/// below the hot `schedule_into` root.
fn hidden_helper(out: &mut Vec<usize>) {
    let spill = Vec::with_capacity(out.len());
    out.extend(spill);
}

/// Trips rng-stream: the destination draw happens only when the gate
/// draw comes up true, so the keystream position depends on data.
pub fn seeded_arrival(rng: &mut SimRng, n: usize, active: bool) -> Option<usize> {
    if active {
        Some(rng.gen_range(0..n))
    } else {
        None
    }
}

/// Does NOT trip rng-stream: same shape, but the draw-count contract is
/// documented with a fn-scoped tag.
// lint:allow(rng-stream): draws 1 gate word per slot + 1 dest word per arrival
pub fn contracted_arrival(rng: &mut SimRng, n: usize) -> Option<usize> {
    if rng.gen_bool(0.5) {
        Some(rng.gen_range(0..n))
    } else {
        None
    }
}

/// Trips telemetry-hygiene: lcf_telemetry named outside any
/// `#[cfg(feature = "telemetry")]` gate.
pub fn seeded_probe(events: &mut Vec<lcf_telemetry::Event>) {
    events.clear();
}

/// Does NOT trip telemetry-hygiene: the item is feature-gated.
#[cfg(feature = "telemetry")]
pub fn gated_probe(events: &mut Vec<lcf_telemetry::Event>) {
    events.clear();
}
