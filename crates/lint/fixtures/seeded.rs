//! Seeded-violation fixture for the `lcf-lint` self-test.
//!
//! This file is never compiled; it exists so `cargo run -p lcf-lint -- --self-test`
//! (and `cargo run -p lcf-lint -- crates/lint/fixtures/seeded.rs`, which must
//! exit non-zero) can prove every rule actually fires. It deliberately lacks
//! `#![forbid(unsafe_code)]` to trip the forbid-unsafe rule.

use std::collections::HashMap; // trips hash-collections
use std::time::Instant; // trips wall-clock

/// Trips no-panic (unwrap and panic!) and truncating-cast.
pub fn seeded(port: usize, m: &HashMap<usize, usize>) -> u8 {
    let _t = Instant::now();
    if port > 255 {
        panic!("port out of range");
    }
    let _narrow = *m.get(&port).unwrap() as u32;
    // lint:allow(truncating-cast): fixture demonstrates a correctly justified tag
    let allowed = port as u16;
    (allowed & 0xFF) as u8
}

/// Trips hot-path-alloc (per-slot allocation in a hot function body).
pub fn schedule_into(requests: &[bool], out: &mut Vec<usize>) {
    let scratch = vec![0usize; requests.len()];
    out.extend(scratch);
}
