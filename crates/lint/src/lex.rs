//! The hand-rolled Rust lexer underneath the lint rules.
//!
//! Produces a flat stream of identifier / punctuation / string-literal
//! tokens plus the comment list. Comments (line, nested block, doc),
//! char/byte/numeric literals and lifetimes are consumed without producing
//! tokens, so rule words inside them can never fire. String literals *do*
//! produce a [`Tok::Str`] carrying their content — the item parser needs
//! the `"telemetry"` in `#[cfg(feature = "telemetry")]` — but since they
//! are a distinct token kind, identifier-matching rules still never see
//! them.

/// Token categories the rules and the item parser care about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Any single punctuation character.
    Punct(char),
    /// A string literal (plain or raw), carrying its content.
    Str(String),
}

/// A token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line the token starts on.
    pub line: usize,
}

/// A comment with the 1-based line it starts on.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Raw comment text including the delimiters.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: usize,
}

/// Lexes `source` into tokens plus the comment list.
///
/// Numeric literals are consumed including their type suffix, so `0u32`
/// never trips `truncating-cast`; char, byte and byte-string literals are
/// consumed without producing tokens.
pub fn tokenize(source: &str) -> (Vec<Spanned>, Vec<Comment>) {
    let bytes: Vec<char> = source.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let n = bytes.len();

    let count_lines = |s: &[char]| s.iter().filter(|&&c| c == '\n').count();

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                let start = i;
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
                comments.push(Comment {
                    text: bytes[start..i].iter().collect(),
                    line,
                });
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                comments.push(Comment {
                    text: bytes[start..i.min(n)].iter().collect(),
                    line: start_line,
                });
            }
            '"' => {
                let start_line = line;
                let (end, content) = read_string(&bytes, i, &mut line);
                toks.push(Spanned {
                    tok: Tok::Str(content),
                    line: start_line,
                });
                i = end;
            }
            'r' | 'b' if starts_literal(&bytes, i) => {
                let start_line = line;
                let (end, content) = skip_prefixed_literal(&bytes, i);
                line += count_lines(&bytes[i..end]);
                if let Some(content) = content {
                    toks.push(Spanned {
                        tok: Tok::Str(content),
                        line: start_line,
                    });
                }
                i = end;
            }
            '\'' => {
                // Lifetime or loop label (`'a`, `'outer`) vs char literal
                // (`'a'`, `'\n'`).
                if i + 1 < n && (bytes[i + 1].is_alphabetic() || bytes[i + 1] == '_') {
                    let mut j = i + 2;
                    while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                        j += 1;
                    }
                    if j < n && bytes[j] == '\'' && j == i + 2 {
                        i = j + 1; // single-char literal like 'a'
                    } else {
                        i = j; // lifetime or label: skip, no closing quote
                    }
                } else {
                    // Escaped or punctuation char literal: '\n', '\'', '('.
                    let mut j = i + 1;
                    while j < n && bytes[j] != '\'' {
                        if bytes[j] == '\\' {
                            j += 1;
                        }
                        j += 1;
                    }
                    i = j + 1;
                }
            }
            _ if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                toks.push(Spanned {
                    tok: Tok::Ident(bytes[start..i].iter().collect()),
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                // Numeric literal incl. type suffix (`0u32`, `1_000`, `0x5EED`,
                // `1.5e-3`): consume so the suffix never becomes an ident.
                while i < n
                    && (bytes[i].is_alphanumeric()
                        || bytes[i] == '_'
                        || bytes[i] == '.' && i + 1 < n && bytes[i + 1].is_ascii_digit())
                {
                    i += 1;
                }
            }
            _ => {
                if !c.is_whitespace() {
                    toks.push(Spanned {
                        tok: Tok::Punct(c),
                        line,
                    });
                }
                i += 1;
            }
        }
    }
    (toks, comments)
}

/// True if position `i` (at `r` or `b`) starts a raw/byte literal rather
/// than an identifier.
fn starts_literal(bytes: &[char], i: usize) -> bool {
    // Not a literal if preceded by an ident char (e.g. the `r` in `var`).
    if i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_') {
        return false;
    }
    let n = bytes.len();
    match bytes[i] {
        'r' => i + 1 < n && (bytes[i + 1] == '"' || bytes[i + 1] == '#'),
        'b' => {
            i + 1 < n
                && (bytes[i + 1] == '"'
                    || bytes[i + 1] == '\''
                    || (bytes[i + 1] == 'r'
                        && i + 2 < n
                        && (bytes[i + 2] == '"' || bytes[i + 2] == '#')))
        }
        _ => false,
    }
}

/// Reads a plain `"..."` string starting at `i`, tracking newlines.
/// Returns the index just past the closing quote and the content.
fn read_string(bytes: &[char], mut i: usize, line: &mut usize) -> (usize, String) {
    let n = bytes.len();
    let start = i + 1;
    i += 1;
    while i < n {
        match bytes[i] {
            '\\' => i += 2,
            '"' => return (i + 1, bytes[start..i].iter().collect()),
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (n, bytes[start..n.min(bytes.len())].iter().collect())
}

/// Skips a literal starting with `r`/`b`: raw strings (`r"…"`, `r#"…"#`),
/// byte strings (`b"…"`, `br#"…"#`), raw idents (`r#name`) and byte chars
/// (`b'x'`). Returns the index just past the literal, plus the content for
/// raw (non-byte) strings, which become [`Tok::Str`] tokens.
fn skip_prefixed_literal(bytes: &[char], mut i: usize) -> (usize, Option<String>) {
    let n = bytes.len();
    // Consume the prefix letters.
    let is_byte = bytes[i] == 'b';
    if is_byte {
        i += 1;
    }
    if i < n && bytes[i] == 'r' {
        i += 1;
    }
    if i < n && bytes[i] == '\'' {
        // Byte char b'x' / b'\n'.
        i += 1;
        while i < n && bytes[i] != '\'' {
            if bytes[i] == '\\' {
                i += 1;
            }
            i += 1;
        }
        return ((i + 1).min(n), None);
    }
    // Count `#`s of a raw string; `r#ident` has no quote after the hashes.
    let mut hashes = 0;
    while i < n && bytes[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= n || bytes[i] != '"' {
        // Raw identifier like r#type: lex as an ident (skipped — raw idents
        // are never rule words).
        while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
            i += 1;
        }
        return (i, None);
    }
    i += 1; // opening quote
    let content_start = i;
    while i < n {
        if bytes[i] == '"' {
            let mut k = 0;
            while k < hashes && i + 1 + k < n && bytes[i + 1 + k] == '#' {
                k += 1;
            }
            if k == hashes {
                let content: String = bytes[content_start..i].iter().collect();
                return (i + 1 + hashes, (!is_byte).then_some(content));
            }
        }
        i += 1;
    }
    (n, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .0
            .into_iter()
            .filter_map(|s| match s.tok {
                Tok::Ident(i) => Some(i),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_become_str_tokens_not_idents() {
        let (toks, _) = tokenize(r#"let s = "HashMap unwrap()";"#);
        assert!(toks
            .iter()
            .any(|t| t.tok == Tok::Str("HashMap unwrap()".into())));
        assert!(!idents(r#"let s = "HashMap";"#).contains(&"HashMap".to_string()));
    }

    #[test]
    fn raw_strings_yield_content() {
        let (toks, _) = tokenize(r##"const R: &str = r#"Instant " panic!"#;"##);
        assert!(toks
            .iter()
            .any(|t| matches!(&t.tok, Tok::Str(s) if s.contains("Instant"))));
        assert!(!idents(r##"r#"Instant"#"##).contains(&"Instant".to_string()));
    }

    #[test]
    fn byte_literals_are_silent() {
        let (toks, _) = tokenize(r#"const A: &[u8] = b"HashMap"; const B: u8 = b'H';"#);
        assert!(!toks.iter().any(|t| matches!(&t.tok, Tok::Str(_))));
    }

    #[test]
    fn nested_block_comments_are_one_comment() {
        let (toks, comments) = tokenize("/* outer /* inner */ still outer */ fn f() {}");
        assert_eq!(comments.len(), 1);
        assert!(comments[0].text.contains("inner"));
        assert_eq!(idents("/* /* x */ */ fn f() {}"), ["fn", "f"]);
        let _ = toks;
    }

    #[test]
    fn lifetimes_and_labels_are_skipped_but_code_is_not() {
        // 'a is a lifetime, 'outer: a loop label; both skipped without
        // swallowing the tokens after them.
        let ids = idents("fn f<'a>(x: &'a u32) { 'outer: loop { break 'outer; } }");
        assert!(ids.contains(&"loop".to_string()));
        assert!(ids.contains(&"break".to_string()));
        assert!(!ids.contains(&"outer".to_string()));
        assert!(!ids.contains(&"a".to_string()));
    }

    #[test]
    fn char_literals_do_not_eat_code() {
        let ids = idents("let c = '\\''; let d = '('; unwrap()");
        assert!(ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn numeric_suffixes_are_not_idents() {
        assert_eq!(idents("const X: u32 = 0u32;"), ["const", "X", "u32"]);
    }

    #[test]
    fn multiline_strings_keep_line_numbers() {
        let (toks, _) = tokenize("let s = \"a\nb\";\nfn f() {}");
        let f = toks
            .iter()
            .find(|t| t.tok == Tok::Ident("fn".into()))
            .unwrap();
        assert_eq!(f.line, 3);
    }

    #[test]
    fn line_numbers_survive_block_comments() {
        let (toks, _) = tokenize("/* a\nb\nc */ fn f() {}");
        assert_eq!(toks[0].line, 3);
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'x", "b'", "r#"] {
            let _ = tokenize(src);
        }
    }
}
