//! # lcf-lint — repo-specific static analysis
//!
//! A dependency-free static analyzer for the workspace's own determinism
//! and robustness rules — the properties `rustc` and `clippy` cannot know
//! about because they are contracts of *this* codebase:
//!
//! | rule | meaning | scope |
//! |---|---|---|
//! | `hash-collections` | no `HashMap`/`HashSet` (iteration order is unspecified; simulation results must be bit-identical) | core, sim, fabric, clint, telemetry, hw, bench |
//! | `wall-clock` | no `SystemTime`/`Instant` (simulated time is slot-based; wall clocks break reproducibility) | core, sim, fabric, clint, telemetry, hw |
//! | `no-panic` | no `unwrap()`/`expect()`/`panic!` in non-test library code | core, sim, telemetry, fabric, clint, hw |
//! | `truncating-cast` | no `as u8`/`u16`/`u32`/`i8`/`i16`/`i32` casts (port indices are `usize`; narrowing must be `try_from`) | core, sim, fabric |
//! | `forbid-unsafe` | `#![forbid(unsafe_code)]` present in every crate root (`src/lib.rs` / `src/main.rs` / `src/bin/*.rs`) | whole workspace |
//! | `hot-path-alloc` | no `Matching::new`, `vec![...]` or `with_capacity` inside per-slot hot functions (`schedule_into`, `schedule_weighted_into`, `step`, `step_window`) **or any same-crate fn they call** — buffers are sized at construction and reused | core, sim |
//! | `rng-stream` | no branch-dependent RNG draw (a draw reachable under only one arm of `if`/`match`, in a `while`/`loop`, or inside a lazy combinator closure) unless the enclosing fn documents its draw-count contract with `lint:allow(rng-stream): ...` | sim traffic, rng |
//! | `telemetry-hygiene` | no use of `lcf_telemetry` symbols outside a `#[cfg(feature = "telemetry")]`-gated item or block — the default-off hot path must provably not touch telemetry | core, sim, clint, cli |
//!
//! The analysis is structure-aware but still hand-rolled and
//! dependency-free: the [`lex`] module tokenizes (comments, raw strings,
//! lifetimes, numeric suffixes all handled), and the [`parse`] module
//! recovers the item tree — `fn`/`impl` spans with owners, `#[cfg(...)]`
//! gates (test and telemetry), out-of-line `mod` declarations — plus
//! enough call structure for a one-level intra-crate call graph. Items
//! gated behind a `test` cfg (`#[cfg(test)]` modules, `#[test]`
//! functions) are skipped by every content rule; `cfg_attr(test, ...)`
//! and `cfg(not(test))` do **not** gate (that code is live in
//! production).
//!
//! ## Why `rng-stream` exists
//!
//! The golden traces and `replicate_seed` coupling freeze exact
//! keystreams: every traffic generator documents how many RNG words it
//! consumes per slot, and replicated runs rely on that count being
//! data-independent. A draw that executes under only one branch makes
//! the stream position depend on earlier outcomes, silently decoupling
//! paired runs. Generators that *intentionally* draw variable counts
//! (rejection sampling, gate-then-destination) must say so:
//!
//! ```text
//! // lint:allow(rng-stream): draws 1 gate word per slot + 1 dest word per arrival
//! fn arrival(&mut self, rng: &mut SimRng) -> Option<usize> { ... }
//! ```
//!
//! For `rng-stream` the tag is *fn-scoped*: placed within two lines above
//! the `fn` (or anywhere inside it), it covers the whole body, because the
//! draw-count contract is a property of the function, not of one line.
//!
//! ## Allowlist tag
//!
//! Every other finding is suppressed line-wise with an inline
//! justification comment:
//!
//! ```text
//! // lint:allow(no-panic): grant ⊆ request is checked above, so the queue is non-empty
//! .expect("scheduler granted an empty queue");
//! ```
//!
//! The tag names the rule and *must* carry a non-empty justification after
//! the colon; it applies to its own line and the following line (so it works
//! both trailing and on the line above). A tag without a justification is
//! itself reported as a `bad-allow-tag` finding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lex;
pub mod parse;

use lex::{Comment, Tok};
use parse::{FnItem, ParsedFile};
use std::collections::BTreeSet;
use std::fmt;

/// Rule identifiers, used in findings and in `lint:allow(...)` tags.
pub mod rules {
    /// `HashMap`/`HashSet` in deterministic code.
    pub const HASH_COLLECTIONS: &str = "hash-collections";
    /// `SystemTime`/`Instant` in simulation logic.
    pub const WALL_CLOCK: &str = "wall-clock";
    /// `unwrap()`/`expect()`/`panic!` in non-test library code.
    pub const NO_PANIC: &str = "no-panic";
    /// Truncating `as` casts on integer values.
    pub const TRUNCATING_CAST: &str = "truncating-cast";
    /// Missing `#![forbid(unsafe_code)]` in a crate root.
    pub const FORBID_UNSAFE: &str = "forbid-unsafe";
    /// Heap allocation inside a per-slot hot function or its callees.
    pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
    /// Branch-dependent RNG draw without a documented draw-count contract.
    pub const RNG_STREAM: &str = "rng-stream";
    /// `lcf_telemetry` use outside a `#[cfg(feature = "telemetry")]` gate.
    pub const TELEMETRY_HYGIENE: &str = "telemetry-hygiene";
    /// Malformed `lint:allow` tag (unknown rule or empty justification).
    pub const BAD_ALLOW_TAG: &str = "bad-allow-tag";

    /// Every content rule a `lint:allow` tag may name.
    pub const ALL: [&str; 8] = [
        HASH_COLLECTIONS,
        WALL_CLOCK,
        NO_PANIC,
        TRUNCATING_CAST,
        FORBID_UNSAFE,
        HOT_PATH_ALLOC,
        RNG_STREAM,
        TELEMETRY_HYGIENE,
    ];
}

/// Which rules to run on one file. Built per-file by the CLI from the path
/// (different crates have different contracts); [`RuleSet::all`] enables
/// everything (used for explicit file arguments and the self-test fixture).
#[derive(Clone, Copy, Debug, Default)]
pub struct RuleSet {
    /// Enforce the `hash-collections` rule.
    pub hash_collections: bool,
    /// Enforce the `wall-clock` rule.
    pub wall_clock: bool,
    /// Enforce the `no-panic` rule.
    pub no_panic: bool,
    /// Enforce the `truncating-cast` rule.
    pub truncating_cast: bool,
    /// Require `#![forbid(unsafe_code)]` (crate roots only).
    pub forbid_unsafe: bool,
    /// Enforce the `hot-path-alloc` rule (this file's hot fns are roots,
    /// and its fns are candidate callees for same-group roots).
    pub hot_path_alloc: bool,
    /// Enforce the `rng-stream` rule.
    pub rng_stream: bool,
    /// Enforce the `telemetry-hygiene` rule.
    pub telemetry_hygiene: bool,
}

impl RuleSet {
    /// All rules on.
    pub fn all() -> Self {
        RuleSet {
            hash_collections: true,
            wall_clock: true,
            no_panic: true,
            truncating_cast: true,
            forbid_unsafe: true,
            hot_path_alloc: true,
            rng_stream: true,
            telemetry_hygiene: true,
        }
    }

    /// True if no rule is enabled (the file can be skipped).
    pub fn is_empty(&self) -> bool {
        !(self.hash_collections
            || self.wall_clock
            || self.no_panic
            || self.truncating_cast
            || self.forbid_unsafe
            || self.hot_path_alloc
            || self.rng_stream
            || self.telemetry_hygiene)
    }
}

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Path label of the offending file (as given to [`lint_source`]).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of [`rules`]).
    pub rule: &'static str,
    /// Short description of what was matched.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.excerpt
        )
    }
}

/// A parsed `lint:allow(rule): justification` tag.
struct AllowTag {
    rule: String,
    justified: bool,
    line: usize,
}

/// Extracts every `lint:allow(...)` tag from the comments.
fn allow_tags(comments: &[Comment]) -> Vec<AllowTag> {
    let mut tags = Vec::new();
    for c in comments {
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("lint:allow(") {
            rest = &rest[pos + "lint:allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let rule = rest[..close].trim().to_string();
            let after = &rest[close + 1..];
            let justified = after
                .strip_prefix(':')
                .is_some_and(|j| !j.trim_start_matches(['/', '*']).trim().is_empty());
            tags.push(AllowTag {
                rule,
                justified,
                line: c.line,
            });
            rest = after;
        }
    }
    tags
}

/// Integer types an `as` cast may silently truncate a port index into.
const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Function names whose bodies are per-slot hot paths under the
/// `hot-path-alloc` rule: the primary scheduling methods, the switch
/// models' slot step, and the serve engine's windowed stepping loop.
const HOT_FNS: [&str; 4] = [
    "schedule_into",
    "schedule_weighted_into",
    "step",
    "step_window",
];

/// Method names whose body draws count as RNG draws under `rng-stream`.
/// `next` covers the bulk samplers' generic word source (`FnMut() -> u32`);
/// the scoped files use no iterator by that name.
const DRAW_FNS: [&str; 9] = [
    "next_u32",
    "next_u64",
    "fill_bytes",
    "gen_bool",
    "gen_range",
    "gen",
    "sample",
    "random",
    "next",
];

/// Combinators whose argument closure runs conditionally: a draw inside
/// `cond.then(|| rng.next_u32())` is branch-dependent exactly like a draw
/// inside an `if` arm.
const LAZY_COMBINATORS: [&str; 8] = [
    "then",
    "then_some",
    "map_or",
    "map_or_else",
    "unwrap_or_else",
    "or_else",
    "filter",
    "get_or_insert_with",
];

/// One lexed + parsed source file, ready for linting. Parsing once and
/// linting per-crate lets the `hot-path-alloc` rule follow calls across
/// files of the same crate.
pub struct SourceFile {
    /// Path label used in findings.
    pub label: String,
    toks: Vec<lex::Spanned>,
    parsed: ParsedFile,
    tags: Vec<AllowTag>,
}

impl SourceFile {
    /// Lexes and parses `source`, labeling future findings with `label`.
    pub fn parse(label: &str, source: &str) -> Self {
        let (toks, comments) = lex::tokenize(source);
        let parsed = parse::parse(&toks);
        let tags = allow_tags(&comments);
        SourceFile {
            label: label.to_string(),
            toks,
            parsed,
            tags,
        }
    }

    /// The file's out-of-line `mod name;` declarations with their cfg
    /// gates — the binary uses these to propagate a parent file's
    /// `#[cfg(feature = "telemetry")]` gate onto the child file.
    pub fn mod_decls(&self) -> &[parse::ModDecl] {
        &self.parsed.mod_decls
    }

    /// Line-scoped allowlist check: a justified tag on the same or the
    /// preceding line.
    fn allowed(&self, rule: &str, line: usize) -> bool {
        self.tags
            .iter()
            .any(|t| t.justified && t.rule == rule && (t.line == line || t.line + 1 == line))
    }

    /// Fn-scoped allowlist check for `rng-stream`: a justified tag
    /// anywhere inside the fn covers the whole body, and a tag up to two
    /// lines above the `fn` (room for doc/attr lines) covers it if this
    /// fn is the *first* one after the tag — so adjacent one-line fns
    /// don't inherit each other's contracts.
    fn fn_allowed(&self, rule: &str, f: &FnItem) -> bool {
        self.tags.iter().any(|t| {
            if !t.justified || t.rule != rule {
                return false;
            }
            if t.line >= f.line && t.line <= f.end_line {
                return true;
            }
            t.line < f.line
                && f.line - t.line <= 2
                && !self
                    .parsed
                    .fns
                    .iter()
                    .any(|g| g.line > t.line && g.line < f.line)
        })
    }

    /// Body spans of fns nested strictly inside `outer` (scanned on their
    /// own; skipped when scanning the outer body).
    fn nested_fn_spans(&self, outer: (usize, usize)) -> Vec<(usize, usize)> {
        self.parsed
            .fns
            .iter()
            .filter_map(|f| f.body)
            .filter(|&(a, b)| a > outer.0 && b < outer.1)
            .collect()
    }
}

/// Lints one file's source text under `rules`, labeling findings with
/// `path_label`. Convenience wrapper over [`lint_files`] for a single
/// file; the call-graph rule then only sees that file's own fns.
pub fn lint_source(path_label: &str, source: &str, rules: &RuleSet) -> Vec<Finding> {
    lint_files(&[(SourceFile::parse(path_label, source), *rules)])
}

/// Lints a group of files (typically one crate). Per-file rules run on
/// each file; the call-graph `hot-path-alloc` pass then runs across the
/// whole group, so a helper extracted into a sibling module is still
/// reachable from its hot caller.
pub fn lint_files(files: &[(SourceFile, RuleSet)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (sf, rules) in files {
        file_pass(sf, rules, &mut findings);
    }
    hot_path_pass(files, &mut findings);
    findings
}

/// All per-file rules: tag validation, forbid-unsafe, the flat content
/// scan (hash/wall-clock/no-panic/cast/telemetry), and the per-fn
/// rng-stream scan.
fn file_pass(sf: &SourceFile, rules: &RuleSet, findings: &mut Vec<Finding>) {
    // Malformed tags are findings themselves — a silent bad tag would
    // suppress nothing while looking like it does. Only checked where some
    // content rule applies: files outside every content scope (like this
    // crate's own docs) may mention tags illustratively.
    let content_rules = rules.hash_collections
        || rules.wall_clock
        || rules.no_panic
        || rules.truncating_cast
        || rules.hot_path_alloc
        || rules.rng_stream
        || rules.telemetry_hygiene;
    if content_rules {
        for t in &sf.tags {
            if !rules::ALL.contains(&t.rule.as_str()) || !t.justified {
                findings.push(Finding {
                    file: sf.label.clone(),
                    line: t.line,
                    rule: rules::BAD_ALLOW_TAG,
                    excerpt: if t.justified {
                        format!("unknown rule `{}` in lint:allow tag", t.rule)
                    } else {
                        format!("lint:allow({}) tag lacks a justification", t.rule)
                    },
                });
            }
        }
    }

    if rules.forbid_unsafe {
        let want: Vec<Tok> = [
            Tok::Punct('#'),
            Tok::Punct('!'),
            Tok::Punct('['),
            Tok::Ident("forbid".into()),
            Tok::Punct('('),
            Tok::Ident("unsafe_code".into()),
            Tok::Punct(')'),
            Tok::Punct(']'),
        ]
        .into();
        let present = sf
            .toks
            .windows(want.len())
            .any(|w| w.iter().map(|s| &s.tok).eq(want.iter()));
        if !present && !sf.allowed(rules::FORBID_UNSAFE, 1) {
            findings.push(Finding {
                file: sf.label.clone(),
                line: 1,
                rule: rules::FORBID_UNSAFE,
                excerpt: "crate root lacks #![forbid(unsafe_code)]".to_string(),
            });
        }
    }

    // Flat content scan with test-gated spans skipped.
    for (idx, s) in sf.toks.iter().enumerate() {
        if sf.parsed.in_test(idx) {
            continue;
        }
        let line = s.line;
        let next = sf.toks.get(idx + 1).map(|s| &s.tok);
        let mut push = |rule: &'static str, excerpt: String| {
            if !sf.allowed(rule, line) {
                findings.push(Finding {
                    file: sf.label.clone(),
                    line,
                    rule,
                    excerpt,
                });
            }
        };
        if let Tok::Ident(id) = &s.tok {
            match id.as_str() {
                "HashMap" | "HashSet" if rules.hash_collections => {
                    push(rules::HASH_COLLECTIONS, format!("use of {id}"));
                }
                "SystemTime" | "Instant" if rules.wall_clock => {
                    push(rules::WALL_CLOCK, format!("use of {id}"));
                }
                "unwrap" | "expect" if rules.no_panic && next == Some(&Tok::Punct('(')) => {
                    push(rules::NO_PANIC, format!("call to {id}()"));
                }
                "panic" if rules.no_panic && next == Some(&Tok::Punct('!')) => {
                    push(rules::NO_PANIC, "panic! invocation".to_string());
                }
                "as" if rules.truncating_cast => {
                    if let Some(Tok::Ident(ty)) = next {
                        if NARROW_INTS.contains(&ty.as_str()) {
                            push(rules::TRUNCATING_CAST, format!("truncating cast `as {ty}`"));
                        }
                    }
                }
                "lcf_telemetry" if rules.telemetry_hygiene && !sf.parsed.in_telemetry_gate(idx) => {
                    push(
                        rules::TELEMETRY_HYGIENE,
                        "use of lcf_telemetry outside #[cfg(feature = \"telemetry\")]".to_string(),
                    );
                }
                _ => {}
            }
        }
    }

    if rules.rng_stream {
        rng_stream_pass(sf, findings);
    }
}

/// The `rng-stream` rule: for every non-test fn, walk the body tracking
/// which scopes are conditional (opened by `if`/`else`/`match`/`while`/
/// `loop`, or a lazy combinator's argument list) and flag any RNG draw at
/// conditional depth > 0. `for` bodies are deliberately *not* conditional:
/// iterating a data-independent range and drawing once per element is the
/// documented bulk pattern. Draws in an `if` condition or `match`
/// scrutinee execute unconditionally and are correctly not flagged.
fn rng_stream_pass(sf: &SourceFile, findings: &mut Vec<Finding>) {
    for f in &sf.parsed.fns {
        if f.gates.test {
            continue;
        }
        let Some(body) = f.body else { continue };
        if sf.fn_allowed(rules::RNG_STREAM, f) {
            continue;
        }
        let nested = sf.nested_fn_spans(body);
        let mut brace_cond: Vec<bool> = Vec::new();
        let mut paren_cond: Vec<bool> = Vec::new();
        let mut cond_level = 0usize;
        let mut pending_cond = false;
        let mut pending_comb = false;
        let mut idx = body.0 + 1;
        while idx < body.1 {
            if let Some(&(_, b)) = nested.iter().find(|&&(a, _)| a == idx) {
                idx = b + 1;
                continue;
            }
            let line = sf.toks[idx].line;
            let next = sf.toks.get(idx + 1).map(|s| &s.tok);
            let prev_is_fn = idx > 0 && matches!(&sf.toks[idx - 1].tok, Tok::Ident(p) if p == "fn");
            match &sf.toks[idx].tok {
                Tok::Ident(id)
                    if matches!(id.as_str(), "if" | "else" | "match" | "while" | "loop") =>
                {
                    pending_cond = true;
                }
                Tok::Ident(id)
                    if DRAW_FNS.contains(&id.as_str())
                        && next == Some(&Tok::Punct('('))
                        && !prev_is_fn
                        && cond_level > 0
                        && !sf.allowed(rules::RNG_STREAM, line) =>
                {
                    findings.push(Finding {
                        file: sf.label.clone(),
                        line,
                        rule: rules::RNG_STREAM,
                        excerpt: format!(
                            "branch-dependent RNG draw `{id}` in `{}` — document the \
                             draw-count contract with lint:allow(rng-stream): ...",
                            f.name
                        ),
                    });
                }
                Tok::Ident(id)
                    if LAZY_COMBINATORS.contains(&id.as_str())
                        && next == Some(&Tok::Punct('(')) =>
                {
                    pending_comb = true;
                }
                Tok::Punct('{') => {
                    brace_cond.push(pending_cond);
                    if pending_cond {
                        cond_level += 1;
                    }
                    pending_cond = false;
                }
                Tok::Punct('}') => {
                    let was_cond = brace_cond.pop() == Some(true);
                    if was_cond {
                        cond_level = cond_level.saturating_sub(1);
                    }
                }
                Tok::Punct('(') => {
                    paren_cond.push(pending_comb);
                    if pending_comb {
                        cond_level += 1;
                    }
                    pending_comb = false;
                }
                Tok::Punct(')') => {
                    let was_comb = paren_cond.pop() == Some(true);
                    if was_comb {
                        cond_level = cond_level.saturating_sub(1);
                    }
                }
                _ => {}
            }
            idx += 1;
        }
    }
}

/// The call-graph `hot-path-alloc` pass: every fn named in [`HOT_FNS`]
/// (with a body, not test-gated, in a file where the rule is enabled) is
/// a root. Its own body is scanned for allocation patterns, and every
/// same-group fn it calls — `helper(...)`, `self.helper(...)` or
/// `Type::helper(...)` — is scanned one level deep, closing the "extract
/// a helper, hide the allocation" loophole. Callees that are themselves
/// hot fns are skipped (they are roots in their own right).
fn hot_path_pass(files: &[(SourceFile, RuleSet)], findings: &mut Vec<Finding>) {
    let enabled: Vec<&SourceFile> = files
        .iter()
        .filter(|(_, r)| r.hot_path_alloc)
        .map(|(sf, _)| sf)
        .collect();
    if enabled.is_empty() {
        return;
    }
    // (file label, line) pairs already reported, so a helper shared by two
    // hot callers (or called twice) is flagged once.
    let mut seen: BTreeSet<(String, usize)> = BTreeSet::new();
    for root_sf in &enabled {
        for root in &root_sf.parsed.fns {
            if !HOT_FNS.contains(&root.name.as_str()) || root.gates.test {
                continue;
            }
            let Some(body) = root.body else { continue };
            alloc_scan(root_sf, body, None, &mut seen, findings);
            for (qual, cname) in callees(root_sf, body) {
                if HOT_FNS.contains(&cname.as_str()) {
                    continue;
                }
                // `Self::helper(...)` resolves to the root's own impl type.
                let qual = match qual.as_deref() {
                    Some("Self") => root.owner.clone(),
                    _ => qual,
                };
                for callee_sf in &enabled {
                    for g in &callee_sf.parsed.fns {
                        if g.name != cname || g.gates.test {
                            continue;
                        }
                        if let Some(q) = &qual {
                            if g.owner.as_deref() != Some(q.as_str()) {
                                continue;
                            }
                        }
                        let Some(gbody) = g.body else { continue };
                        alloc_scan(
                            callee_sf,
                            gbody,
                            Some((&g.name, &root.name)),
                            &mut seen,
                            findings,
                        );
                    }
                }
            }
        }
    }
}

/// Collects `(qualifier, name)` call targets from a body: an ident
/// followed by `(` that is not a definition (`fn name(`), with
/// `Type::name(` captured as qualified.
fn callees(sf: &SourceFile, body: (usize, usize)) -> Vec<(Option<String>, String)> {
    let nested = sf.nested_fn_spans(body);
    let mut out = Vec::new();
    let mut idx = body.0 + 1;
    while idx < body.1 {
        if let Some(&(_, b)) = nested.iter().find(|&&(a, _)| a == idx) {
            idx = b + 1;
            continue;
        }
        if let Tok::Ident(name) = &sf.toks[idx].tok {
            let next_is_paren = sf.toks.get(idx + 1).map(|s| &s.tok) == Some(&Tok::Punct('('));
            let prev_is_fn = idx > 0 && matches!(&sf.toks[idx - 1].tok, Tok::Ident(p) if p == "fn");
            if next_is_paren && !prev_is_fn {
                let qual = if idx >= 3
                    && sf.toks[idx - 1].tok == Tok::Punct(':')
                    && sf.toks[idx - 2].tok == Tok::Punct(':')
                {
                    match &sf.toks[idx - 3].tok {
                        Tok::Ident(owner) => Some(owner.clone()),
                        _ => None,
                    }
                } else {
                    None
                };
                out.push((qual, name.clone()));
            }
        }
        idx += 1;
    }
    out
}

/// Scans one fn body for the allocation patterns (`Matching::new`,
/// `vec![...]`, `with_capacity`). `ctx` is `Some((callee, root))` when the
/// body is a callee reached from a hot root, which changes the excerpt to
/// name the call chain.
fn alloc_scan(
    sf: &SourceFile,
    body: (usize, usize),
    ctx: Option<(&str, &str)>,
    seen: &mut BTreeSet<(String, usize)>,
    findings: &mut Vec<Finding>,
) {
    let nested = sf.nested_fn_spans(body);
    let mut idx = body.0 + 1;
    while idx < body.1 {
        if let Some(&(_, b)) = nested.iter().find(|&&(a, _)| a == idx) {
            idx = b + 1;
            continue;
        }
        let line = sf.toks[idx].line;
        let next = sf.toks.get(idx + 1).map(|s| &s.tok);
        let pattern: Option<&str> = match &sf.toks[idx].tok {
            Tok::Ident(id) if id == "Matching" => {
                let m_new = sf.toks.get(idx + 1).map(|s| &s.tok) == Some(&Tok::Punct(':'))
                    && sf.toks.get(idx + 2).map(|s| &s.tok) == Some(&Tok::Punct(':'))
                    && matches!(sf.toks.get(idx + 3).map(|s| &s.tok),
                        Some(Tok::Ident(m)) if m == "new");
                m_new.then_some("Matching::new")
            }
            Tok::Ident(id) if id == "vec" && next == Some(&Tok::Punct('!')) => {
                Some("vec! allocation")
            }
            Tok::Ident(id) if id == "with_capacity" => Some("with_capacity allocation"),
            _ => None,
        };
        if let Some(pat) = pattern {
            if !sf.allowed(rules::HOT_PATH_ALLOC, line) && seen.insert((sf.label.clone(), line)) {
                let excerpt = match ctx {
                    None => format!("{pat} in a hot function"),
                    Some((callee, root)) => {
                        format!("{pat} in `{callee}` called from hot `{root}`")
                    }
                };
                findings.push(Finding {
                    file: sf.label.clone(),
                    line,
                    rule: rules::HOT_PATH_ALLOC,
                    excerpt,
                });
            }
        }
        idx += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_all(src: &str) -> Vec<Finding> {
        lint_source("t.rs", src, &RuleSet::all())
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    const PREAMBLE: &str = "#![forbid(unsafe_code)]\n";

    #[test]
    fn clean_source_passes() {
        let src = format!("{PREAMBLE}pub fn f(x: usize) -> usize {{ x + 1 }}\n");
        assert!(lint_all(&src).is_empty());
    }

    #[test]
    fn hash_collections_flagged() {
        let src = format!("{PREAMBLE}use std::collections::HashMap;\n");
        let f = lint_all(&src);
        assert_eq!(rules_of(&f), [rules::HASH_COLLECTIONS]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn words_in_comments_and_strings_ignored() {
        let src = format!(
            "{PREAMBLE}// HashMap unwrap() panic! Instant as u8\n\
             /* nested /* HashSet */ still comment */\n\
             const S: &str = \"HashMap unwrap() as u16\";\n\
             const R: &str = r#\"Instant \" panic!\"#;\n"
        );
        assert!(lint_all(&src).is_empty(), "{:?}", lint_all(&src));
    }

    #[test]
    fn no_panic_catches_calls_but_not_lookalikes() {
        let src = format!(
            "{PREAMBLE}fn f(o: Option<u64>) -> u64 {{\n\
             o.unwrap_or(3); o.expect_none_hypothetical; o.unwrap()\n\
             }}\n"
        );
        let f = lint_all(&src);
        assert_eq!(rules_of(&f), [rules::NO_PANIC]);
        assert!(f[0].excerpt.contains("unwrap()"));
    }

    #[test]
    fn panic_macro_flagged() {
        let src = format!("{PREAMBLE}fn f() {{ panic!(\"boom\") }}\n");
        assert_eq!(rules_of(&lint_all(&src)), [rules::NO_PANIC]);
    }

    #[test]
    fn truncating_cast_flagged_narrow_only() {
        let src = format!(
            "{PREAMBLE}fn f(x: usize) {{ let _ = x as u32; let _ = x as u64; let _ = x as f64; }}\n"
        );
        let f = lint_all(&src);
        assert_eq!(rules_of(&f), [rules::TRUNCATING_CAST]);
        assert!(f[0].excerpt.contains("as u32"));
    }

    #[test]
    fn numeric_suffixes_are_not_casts() {
        let src = format!("{PREAMBLE}const X: u32 = 0u32; const Y: u8 = 7u8;\n");
        assert!(lint_all(&src).is_empty());
    }

    #[test]
    fn wall_clock_flagged() {
        let src = format!("{PREAMBLE}use std::time::Instant;\n");
        assert_eq!(rules_of(&lint_all(&src)), [rules::WALL_CLOCK]);
    }

    #[test]
    fn missing_forbid_unsafe_flagged() {
        let f = lint_all("pub fn f() {}\n");
        assert_eq!(rules_of(&f), [rules::FORBID_UNSAFE]);
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = format!(
            "{PREAMBLE}#[cfg(test)]\nmod tests {{\n  #[test]\n  fn t() {{ Some(1).unwrap(); panic!(); }}\n}}\n"
        );
        assert!(lint_all(&src).is_empty(), "{:?}", lint_all(&src));
    }

    #[test]
    fn test_fn_with_extra_attrs_skipped() {
        let src = format!(
            "{PREAMBLE}#[test]\n#[should_panic(expected = \"x\")]\nfn t() {{ Some(1).unwrap() }}\n\
             fn live() {{ Some(1).unwrap(); }}\n"
        );
        let f = lint_all(&src);
        assert_eq!(rules_of(&f), [rules::NO_PANIC]);
        assert_eq!(f[0].line, 5, "only the non-test fn fires");
    }

    #[test]
    fn cfg_attr_test_does_not_gate() {
        // `cfg_attr(test, ...)` only adds an attribute under test; the item
        // itself is live in production and must stay linted. The old
        // line-scanner got this wrong.
        let src = format!(
            "{PREAMBLE}#[cfg_attr(test, allow(dead_code))]\nfn live() {{ Some(1).unwrap(); }}\n"
        );
        assert_eq!(rules_of(&lint_all(&src)), [rules::NO_PANIC]);
    }

    #[test]
    fn allow_tag_suppresses_same_and_next_line() {
        let trailing = format!(
            "{PREAMBLE}fn f() {{ Some(1).unwrap(); }} // lint:allow(no-panic): invariant documented here\n"
        );
        assert!(lint_all(&trailing).is_empty());
        let above = format!(
            "{PREAMBLE}// lint:allow(truncating-cast): ids fit in u8 by construction\nfn f(x: usize) -> u8 {{ x as u8 }}\n"
        );
        assert!(lint_all(&above).is_empty());
    }

    #[test]
    fn allow_tag_does_not_leak_past_next_line() {
        let src = format!(
            "{PREAMBLE}// lint:allow(no-panic): only covers the next line\nfn f() {{}}\nfn g() {{ Some(1).unwrap(); }}\n"
        );
        assert_eq!(rules_of(&lint_all(&src)), [rules::NO_PANIC]);
    }

    #[test]
    fn unjustified_or_unknown_allow_tags_are_findings() {
        let src = format!("{PREAMBLE}// lint:allow(no-panic):\nfn f() {{}}\n");
        assert_eq!(rules_of(&lint_all(&src)), [rules::BAD_ALLOW_TAG]);
        let src = format!("{PREAMBLE}// lint:allow(made-up-rule): because\nfn f() {{}}\n");
        assert_eq!(rules_of(&lint_all(&src)), [rules::BAD_ALLOW_TAG]);
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = format!(
            "{PREAMBLE}fn f<'a>(x: &'a [usize]) -> impl Iterator<Item = usize> + 'a {{\n\
             x.iter().map(|v| *v as u32 as usize)\n}}\n"
        );
        // The cast after the lifetimes must still be seen.
        assert_eq!(rules_of(&lint_all(&src)), [rules::TRUNCATING_CAST]);
    }

    #[test]
    fn char_literals_do_not_eat_code() {
        let src = format!(
            "{PREAMBLE}fn f(c: char) -> bool {{ c == '\\'' || c == '(' || c == 'x' }}\n\
             fn g() {{ Some(1).unwrap(); }}\n"
        );
        let f = lint_all(&src);
        assert_eq!(rules_of(&f), [rules::NO_PANIC]);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn scoped_rulesets_only_fire_enabled_rules() {
        let src = "use std::collections::HashMap;\nfn f() { Some(1).unwrap(); }\n";
        let only_hash = RuleSet {
            hash_collections: true,
            ..RuleSet::default()
        };
        let f = lint_source("t.rs", src, &only_hash);
        assert_eq!(rules_of(&f), [rules::HASH_COLLECTIONS]);
    }

    #[test]
    fn byte_and_raw_literals_skipped() {
        let src = format!(
            "{PREAMBLE}const A: &[u8] = b\"HashMap\";\nconst B: u8 = b'H';\nconst C: &str = r\"unwrap()\";\n"
        );
        assert!(lint_all(&src).is_empty(), "{:?}", lint_all(&src));
    }

    // ---- hot-path-alloc ----

    #[test]
    fn hot_path_alloc_flags_allocation_in_hot_fns() {
        let src = format!(
            "{PREAMBLE}fn schedule_into(&mut self, r: &R, out: &mut Matching) {{\n\
             let m = Matching::new(8);\n\
             let v = vec![0; 8];\n\
             let w = Vec::with_capacity(8);\n\
             }}\n"
        );
        let f = lint_all(&src);
        assert_eq!(
            rules_of(&f),
            [
                rules::HOT_PATH_ALLOC,
                rules::HOT_PATH_ALLOC,
                rules::HOT_PATH_ALLOC
            ]
        );
        assert_eq!(f[0].line, 3);
        assert!(f[0].excerpt.contains("Matching::new"));
        assert!(f[1].excerpt.contains("vec!"));
        assert!(f[2].excerpt.contains("with_capacity"));
    }

    #[test]
    fn hot_path_alloc_covers_step_and_weighted_into() {
        let src = format!(
            "{PREAMBLE}fn step(&mut self) {{ let v = vec![1]; }}\n\
             fn schedule_weighted_into(&mut self) {{ let m = Matching::new(4); }}\n"
        );
        assert_eq!(
            rules_of(&lint_all(&src)),
            [rules::HOT_PATH_ALLOC, rules::HOT_PATH_ALLOC]
        );
    }

    #[test]
    fn hot_path_alloc_covers_step_window() {
        let src =
            format!("{PREAMBLE}fn step_window(&mut self, n: u64) {{ let v = vec![0; 8]; }}\n");
        assert_eq!(rules_of(&lint_all(&src)), [rules::HOT_PATH_ALLOC]);
        // The serve engine's windowed loop is a root, so its same-crate
        // callees are scanned one level deep too.
        let src2 = format!(
            "{PREAMBLE}fn step_window(&mut self, n: u64) {{ self.sample(); }}\n\
             fn sample(&mut self) {{ let h = Vec::with_capacity(64); }}\n"
        );
        let f = lint_all(&src2);
        assert_eq!(rules_of(&f), [rules::HOT_PATH_ALLOC]);
        assert!(
            f[0].excerpt
                .contains("`sample` called from hot `step_window`"),
            "{}",
            f[0].excerpt
        );
    }

    #[test]
    fn hot_path_alloc_ignores_cold_fns_and_trait_decls() {
        let src = format!(
            "{PREAMBLE}trait S {{ fn schedule_into(&mut self, out: &mut Matching); }}\n\
             fn new(n: usize) -> Vec<usize> {{ Vec::with_capacity(n) }}\n\
             fn schedule(&mut self) -> Matching {{ Matching::new(8) }}\n\
             fn after_the_decl() {{ let v = vec![0]; }}\n"
        );
        assert!(lint_all(&src).is_empty(), "{:?}", lint_all(&src));
    }

    #[test]
    fn hot_path_alloc_scope_ends_with_the_body() {
        let src = format!(
            "{PREAMBLE}fn step(&mut self) {{ if x {{ f(); }} }}\n\
             fn cold() {{ let v = vec![0]; }}\n"
        );
        assert!(lint_all(&src).is_empty(), "{:?}", lint_all(&src));
    }

    #[test]
    fn hot_path_alloc_allow_tag_works() {
        let src = format!(
            "{PREAMBLE}fn step(&mut self) {{\n\
             // lint:allow(hot-path-alloc): one-time lazy growth, amortized to zero\n\
             let v = vec![0; 8];\n\
             }}\n"
        );
        assert!(lint_all(&src).is_empty(), "{:?}", lint_all(&src));
    }

    #[test]
    fn hot_path_alloc_follows_bare_calls_one_level() {
        let src = format!(
            "{PREAMBLE}fn step(&mut self) {{ self.refill(); }}\n\
             fn refill(&mut self) {{ self.buf = vec![0; self.n]; }}\n"
        );
        let f = lint_all(&src);
        assert_eq!(rules_of(&f), [rules::HOT_PATH_ALLOC]);
        assert!(
            f[0].excerpt.contains("`refill` called from hot `step`"),
            "{}",
            f[0].excerpt
        );
    }

    #[test]
    fn hot_path_alloc_follows_qualified_calls_with_owner_match() {
        let src = format!(
            "{PREAMBLE}impl A {{ fn grow(&mut self) {{ let v = Vec::with_capacity(9); }} }}\n\
             impl B {{ fn grow(&mut self) {{ let x = 1; }} }}\n\
             fn step(&mut self) {{ B::grow(); }}\n"
        );
        // Only B::grow is called; A::grow's allocation must not fire.
        assert!(lint_all(&src).is_empty(), "{:?}", lint_all(&src));
        let src2 = format!(
            "{PREAMBLE}impl A {{ fn grow(&mut self) {{ let v = Vec::with_capacity(9); }} }}\n\
             fn step(&mut self) {{ A::grow(); }}\n"
        );
        let f = lint_all(&src2);
        assert_eq!(rules_of(&f), [rules::HOT_PATH_ALLOC]);
        assert!(f[0].excerpt.contains("`grow` called from hot `step`"));
    }

    #[test]
    fn hot_path_alloc_cross_file_same_group() {
        let hot = SourceFile::parse(
            "a.rs",
            "#![forbid(unsafe_code)]\nfn schedule_into(&mut self) { helper(); }\n",
        );
        let cold = SourceFile::parse(
            "b.rs",
            "#![forbid(unsafe_code)]\nfn helper() { let v = vec![0; 4]; }\n",
        );
        let f = lint_files(&[(hot, RuleSet::all()), (cold, RuleSet::all())]);
        assert_eq!(rules_of(&f), [rules::HOT_PATH_ALLOC]);
        assert_eq!(f[0].file, "b.rs");
        assert!(f[0]
            .excerpt
            .contains("`helper` called from hot `schedule_into`"));
    }

    #[test]
    fn hot_path_alloc_uncalled_helper_not_flagged() {
        let src = format!(
            "{PREAMBLE}fn step(&mut self) {{ self.tick(); }}\n\
             fn tick(&mut self) {{}}\n\
             fn resize(&mut self) {{ let v = vec![0; 4]; }}\n"
        );
        assert!(lint_all(&src).is_empty(), "{:?}", lint_all(&src));
    }

    #[test]
    fn hot_path_alloc_callee_tag_suppresses() {
        let src = format!(
            "{PREAMBLE}fn step(&mut self) {{ self.spill(); }}\n\
             fn spill(&mut self) {{\n\
             // lint:allow(hot-path-alloc): cold error path, runs at most once per run\n\
             let v = vec![0; 4];\n\
             }}\n"
        );
        assert!(lint_all(&src).is_empty(), "{:?}", lint_all(&src));
    }

    #[test]
    fn hot_path_alloc_shared_helper_reported_once() {
        let src = format!(
            "{PREAMBLE}fn step(&mut self) {{ self.grow(); }}\n\
             fn schedule_into(&mut self) {{ self.grow(); }}\n\
             fn grow(&mut self) {{ let v = vec![0; 4]; }}\n"
        );
        let f = lint_all(&src);
        assert_eq!(rules_of(&f), [rules::HOT_PATH_ALLOC]);
    }

    #[test]
    fn hot_path_alloc_skips_hot_callees_as_callees() {
        // `step` calling `schedule_into` must not double-report: the callee
        // is a root itself.
        let src = format!(
            "{PREAMBLE}fn step(&mut self) {{ self.schedule_into(); }}\n\
             fn schedule_into(&mut self) {{ let v = vec![0; 4]; }}\n"
        );
        let f = lint_all(&src);
        assert_eq!(rules_of(&f), [rules::HOT_PATH_ALLOC]);
        assert!(f[0].excerpt.contains("in a hot function"));
    }

    // ---- rng-stream ----

    #[test]
    fn rng_stream_flags_draw_in_if_arm() {
        let src = format!(
            "{PREAMBLE}fn arrival(&mut self, rng: &mut SimRng) -> Option<usize> {{\n\
             if self.active {{ Some(rng.gen_range(0..self.n)) }} else {{ None }}\n\
             }}\n"
        );
        let f = lint_all(&src);
        assert_eq!(rules_of(&f), [rules::RNG_STREAM]);
        assert!(f[0].excerpt.contains("gen_range"));
        assert!(f[0].excerpt.contains("`arrival`"));
    }

    #[test]
    fn rng_stream_flags_draw_in_match_arm() {
        let src = format!(
            "{PREAMBLE}fn sample(&mut self, rng: &mut SimRng) -> usize {{\n\
             match self.mode {{ Mode::U => rng.gen_range(0..4), Mode::C => 0 }}\n\
             }}\n"
        );
        assert_eq!(rules_of(&lint_all(&src)), [rules::RNG_STREAM]);
    }

    #[test]
    fn rng_stream_flags_draw_in_lazy_combinator() {
        let src = format!(
            "{PREAMBLE}fn arrival(&mut self, rng: &mut SimRng) -> Option<usize> {{\n\
             self.gate(rng).then(|| self.dest.sample(rng))\n\
             }}\n"
        );
        let f = lint_all(&src);
        assert_eq!(rules_of(&f), [rules::RNG_STREAM]);
        assert!(f[0].excerpt.contains("sample"));
    }

    #[test]
    fn rng_stream_flags_draw_in_rejection_loop() {
        let src = format!(
            "{PREAMBLE}fn draw(&self, rng: &mut R) -> u32 {{\n\
             loop {{ let x = rng.next_u32(); if x < self.zone {{ return x; }} }}\n\
             }}\n"
        );
        assert_eq!(rules_of(&lint_all(&src)), [rules::RNG_STREAM]);
    }

    #[test]
    fn rng_stream_unconditional_draws_pass() {
        let src = format!(
            "{PREAMBLE}fn sample(&mut self, rng: &mut SimRng) -> usize {{\n\
             let raw = rng.next_u32();\n\
             let d = rng.gen_range(0..self.n);\n\
             d + raw as usize\n\
             }}\n"
        );
        assert!(lint_all(&src).is_empty(), "{:?}", lint_all(&src));
    }

    #[test]
    fn rng_stream_condition_and_scrutinee_draws_pass() {
        // A draw *in* the condition or scrutinee executes unconditionally.
        let src = format!(
            "{PREAMBLE}fn arrival(&mut self, rng: &mut SimRng) -> usize {{\n\
             if rng.gen_bool(self.p) {{ self.hits += 1; }}\n\
             match rng.gen_range(0..4) {{ 0 => 1, _ => 2 }}\n\
             }}\n"
        );
        assert!(lint_all(&src).is_empty(), "{:?}", lint_all(&src));
    }

    #[test]
    fn rng_stream_for_loop_draws_pass() {
        // One draw per element of a data-independent range is the
        // documented bulk pattern, not a branch dependence.
        let src = format!(
            "{PREAMBLE}fn fill(&mut self, rng: &mut SimRng, out: &mut [u32]) {{\n\
             for slot in out.iter_mut() {{ *slot = rng.next_u32(); }}\n\
             }}\n"
        );
        assert!(lint_all(&src).is_empty(), "{:?}", lint_all(&src));
    }

    #[test]
    fn rng_stream_fn_level_tag_covers_whole_body() {
        let src = format!(
            "{PREAMBLE}// lint:allow(rng-stream): draws 1 gate word + 1 dest word per arrival\n\
             fn arrival(&mut self, rng: &mut SimRng) -> Option<usize> {{\n\
             if self.gate(rng) {{ Some(rng.gen_range(0..self.n)) }} else {{ None }}\n\
             }}\n"
        );
        assert!(lint_all(&src).is_empty(), "{:?}", lint_all(&src));
    }

    #[test]
    fn rng_stream_tag_on_one_fn_does_not_cover_the_next() {
        let src = format!(
            "{PREAMBLE}// lint:allow(rng-stream): draws 0 or 1 dest words per slot\n\
             fn a(&mut self, rng: &mut R) {{ if x {{ rng.gen_range(0..2); }} }}\n\
             fn b(&mut self, rng: &mut R) {{ if x {{ rng.gen_range(0..2); }} }}\n"
        );
        let f = lint_all(&src);
        assert_eq!(rules_of(&f), [rules::RNG_STREAM]);
        assert!(f[0].excerpt.contains("`b`"));
    }

    #[test]
    fn rng_stream_test_fns_are_skipped() {
        let src = format!(
            "{PREAMBLE}#[cfg(test)]\nmod tests {{\n\
             fn t(rng: &mut R) {{ if x {{ rng.gen_range(0..2); }} }}\n\
             }}\n"
        );
        assert!(lint_all(&src).is_empty(), "{:?}", lint_all(&src));
    }

    // ---- telemetry-hygiene ----

    #[test]
    fn telemetry_use_outside_gate_flagged() {
        let src = format!("{PREAMBLE}use lcf_telemetry::Event;\n");
        let f = lint_all(&src);
        assert_eq!(rules_of(&f), [rules::TELEMETRY_HYGIENE]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn telemetry_use_behind_item_gate_passes() {
        let src = format!(
            "{PREAMBLE}#[cfg(feature = \"telemetry\")]\nuse lcf_telemetry::Event;\n\
             #[cfg(feature = \"telemetry\")]\nfn probe(e: lcf_telemetry::Event) {{}}\n"
        );
        assert!(lint_all(&src).is_empty(), "{:?}", lint_all(&src));
    }

    #[test]
    fn telemetry_use_behind_statement_gate_passes() {
        let src = format!(
            "{PREAMBLE}fn f(&mut self) {{\n\
             #[cfg(feature = \"telemetry\")]\n\
             {{ self.events.push(lcf_telemetry::Event::Grant); }}\n\
             }}\n"
        );
        assert!(lint_all(&src).is_empty(), "{:?}", lint_all(&src));
    }

    #[test]
    fn telemetry_use_behind_not_gate_flagged() {
        let src =
            format!("{PREAMBLE}#[cfg(not(feature = \"telemetry\"))]\nuse lcf_telemetry::Stub;\n");
        assert_eq!(rules_of(&lint_all(&src)), [rules::TELEMETRY_HYGIENE]);
    }

    #[test]
    fn telemetry_use_in_tests_passes() {
        let src = format!("{PREAMBLE}#[cfg(test)]\nmod tests {{ use lcf_telemetry::Event; }}\n");
        assert!(lint_all(&src).is_empty(), "{:?}", lint_all(&src));
    }

    #[test]
    fn telemetry_gated_trait_method_param_passes() {
        // The `drain_events` idiom: a telemetry-gated default trait method
        // whose signature mentions lcf_telemetry.
        let src = format!(
            "{PREAMBLE}trait Scheduler {{\n\
             #[cfg(feature = \"telemetry\")]\n\
             fn drain_events(&mut self, sink: &mut dyn FnMut(lcf_telemetry::Event)) {{}}\n\
             }}\n"
        );
        assert!(lint_all(&src).is_empty(), "{:?}", lint_all(&src));
    }

    #[test]
    fn finding_display_is_grep_friendly() {
        let f = Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            rule: rules::NO_PANIC,
            excerpt: "call to unwrap()".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/x/src/lib.rs:7: [no-panic] call to unwrap()"
        );
    }
}
