//! # lcf-lint — repo-specific static analysis
//!
//! A dependency-free lexical analyzer for the workspace's own determinism
//! and robustness rules — the properties `rustc` and `clippy` cannot know
//! about because they are contracts of *this* codebase:
//!
//! | rule | meaning | scope |
//! |---|---|---|
//! | `hash-collections` | no `HashMap`/`HashSet` (iteration order is unspecified; simulation results must be bit-identical) | core, sim, fabric, clint, telemetry |
//! | `wall-clock` | no `SystemTime`/`Instant` (simulated time is slot-based; wall clocks break reproducibility) | core, sim, fabric, clint, telemetry |
//! | `no-panic` | no `unwrap()`/`expect()`/`panic!` in non-test library code | core, sim |
//! | `truncating-cast` | no `as u8`/`u16`/`u32`/`i8`/`i16`/`i32` casts (port indices are `usize`; narrowing must be `try_from`) | core, sim, fabric |
//! | `forbid-unsafe` | `#![forbid(unsafe_code)]` present in every crate root (`src/lib.rs` / `src/main.rs`) | whole workspace |
//! | `hot-path-alloc` | no `Matching::new`, `vec![...]` or `with_capacity` inside per-slot hot functions (`schedule_into`, `schedule_weighted_into`, `step` bodies) — buffers are sized at construction and reused | core, sim |
//!
//! The analysis is *lexical*: a hand-rolled Rust tokenizer
//! ([`tokenize`]) that understands comments (line, nested block, doc),
//! string/char/byte literals, raw strings and lifetimes, so rule words
//! inside comments or strings never fire. Items gated behind a `test` cfg
//! (`#[cfg(test)]` modules, `#[test]` functions) are skipped entirely.
//!
//! ## Allowlist tag
//!
//! A finding can be suppressed with an inline justification comment:
//!
//! ```text
//! // lint:allow(no-panic): grant ⊆ request is checked above, so the queue is non-empty
//! .expect("scheduler granted an empty queue");
//! ```
//!
//! The tag names the rule and *must* carry a non-empty justification after
//! the colon; it applies to its own line and the following line (so it works
//! both trailing and on the line above). A tag without a justification is
//! itself reported as a `bad-allow-tag` finding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// Rule identifiers, used in findings and in `lint:allow(...)` tags.
pub mod rules {
    /// `HashMap`/`HashSet` in deterministic code.
    pub const HASH_COLLECTIONS: &str = "hash-collections";
    /// `SystemTime`/`Instant` in simulation logic.
    pub const WALL_CLOCK: &str = "wall-clock";
    /// `unwrap()`/`expect()`/`panic!` in non-test library code.
    pub const NO_PANIC: &str = "no-panic";
    /// Truncating `as` casts on integer values.
    pub const TRUNCATING_CAST: &str = "truncating-cast";
    /// Missing `#![forbid(unsafe_code)]` in a crate root.
    pub const FORBID_UNSAFE: &str = "forbid-unsafe";
    /// Heap allocation inside a per-slot hot function.
    pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
    /// Malformed `lint:allow` tag (unknown rule or empty justification).
    pub const BAD_ALLOW_TAG: &str = "bad-allow-tag";

    /// Every content rule a `lint:allow` tag may name.
    pub const ALL: [&str; 6] = [
        HASH_COLLECTIONS,
        WALL_CLOCK,
        NO_PANIC,
        TRUNCATING_CAST,
        FORBID_UNSAFE,
        HOT_PATH_ALLOC,
    ];
}

/// Which rules to run on one file. Built per-file by the CLI from the path
/// (different crates have different contracts); [`RuleSet::all`] enables
/// everything (used for explicit file arguments and the self-test fixture).
#[derive(Clone, Copy, Debug, Default)]
pub struct RuleSet {
    /// Enforce the `hash-collections` rule.
    pub hash_collections: bool,
    /// Enforce the `wall-clock` rule.
    pub wall_clock: bool,
    /// Enforce the `no-panic` rule.
    pub no_panic: bool,
    /// Enforce the `truncating-cast` rule.
    pub truncating_cast: bool,
    /// Require `#![forbid(unsafe_code)]` (crate roots only).
    pub forbid_unsafe: bool,
    /// Enforce the `hot-path-alloc` rule.
    pub hot_path_alloc: bool,
}

impl RuleSet {
    /// All rules on.
    pub fn all() -> Self {
        RuleSet {
            hash_collections: true,
            wall_clock: true,
            no_panic: true,
            truncating_cast: true,
            forbid_unsafe: true,
            hot_path_alloc: true,
        }
    }

    /// True if no rule is enabled (the file can be skipped).
    pub fn is_empty(&self) -> bool {
        !(self.hash_collections
            || self.wall_clock
            || self.no_panic
            || self.truncating_cast
            || self.forbid_unsafe
            || self.hot_path_alloc)
    }
}

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Path label of the offending file (as given to [`lint_source`]).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of [`rules`]).
    pub rule: &'static str,
    /// Short description of what was matched.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.excerpt
        )
    }
}

/// Token categories the rules care about.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Any single punctuation character.
    Punct(char),
}

/// A token with its 1-based source line.
#[derive(Clone, Debug)]
struct Spanned {
    tok: Tok,
    line: usize,
}

/// A comment with the 1-based line it starts on.
#[derive(Clone, Debug)]
struct Comment {
    text: String,
    line: usize,
}

/// Lexes `source` into identifier/punct tokens plus the comment list.
/// Strings, chars, byte and raw literals are consumed without producing
/// tokens; numeric literals are consumed likewise (their suffixes must not
/// look like idents, so `0u32` never trips `truncating-cast`).
fn tokenize(source: &str) -> (Vec<Spanned>, Vec<Comment>) {
    let bytes: Vec<char> = source.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let n = bytes.len();

    let count_lines = |s: &[char]| s.iter().filter(|&&c| c == '\n').count();

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                let start = i;
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
                comments.push(Comment {
                    text: bytes[start..i].iter().collect(),
                    line,
                });
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < n && depth > 0 {
                    if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                comments.push(Comment {
                    text: bytes[start..i.min(n)].iter().collect(),
                    line: start_line,
                });
            }
            '"' => {
                i = skip_string(&bytes, i, &mut line);
            }
            'r' | 'b' if starts_literal(&bytes, i) => {
                let end = skip_prefixed_literal(&bytes, i);
                line += count_lines(&bytes[i..end]);
                i = end;
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                if i + 1 < n && (bytes[i + 1].is_alphabetic() || bytes[i + 1] == '_') {
                    let mut j = i + 2;
                    while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                        j += 1;
                    }
                    if j < n && bytes[j] == '\'' && j == i + 2 {
                        i = j + 1; // single-char literal like 'a'
                    } else {
                        i = j; // lifetime: skip the label, no closing quote
                    }
                } else {
                    // Escaped or punctuation char literal: '\n', '\'', '('.
                    let mut j = i + 1;
                    while j < n && bytes[j] != '\'' {
                        if bytes[j] == '\\' {
                            j += 1;
                        }
                        j += 1;
                    }
                    i = j + 1;
                }
            }
            _ if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                toks.push(Spanned {
                    tok: Tok::Ident(bytes[start..i].iter().collect()),
                    line,
                });
            }
            _ if c.is_ascii_digit() => {
                // Numeric literal incl. type suffix (`0u32`, `1_000`, `0x5EED`,
                // `1.5e-3`): consume so the suffix never becomes an ident.
                while i < n
                    && (bytes[i].is_alphanumeric()
                        || bytes[i] == '_'
                        || bytes[i] == '.' && i + 1 < n && bytes[i + 1].is_ascii_digit())
                {
                    i += 1;
                }
            }
            _ => {
                if !c.is_whitespace() {
                    toks.push(Spanned {
                        tok: Tok::Punct(c),
                        line,
                    });
                }
                i += 1;
            }
        }
    }
    (toks, comments)
}

/// True if position `i` (at `r` or `b`) starts a raw/byte literal rather
/// than an identifier.
fn starts_literal(bytes: &[char], i: usize) -> bool {
    // Not a literal if preceded by an ident char (e.g. the `r` in `var`).
    if i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_') {
        return false;
    }
    let n = bytes.len();
    match bytes[i] {
        'r' => i + 1 < n && (bytes[i + 1] == '"' || bytes[i + 1] == '#'),
        'b' => {
            i + 1 < n
                && (bytes[i + 1] == '"'
                    || bytes[i + 1] == '\''
                    || (bytes[i + 1] == 'r'
                        && i + 2 < n
                        && (bytes[i + 2] == '"' || bytes[i + 2] == '#')))
        }
        _ => false,
    }
}

/// Skips a plain `"..."` string starting at `i`, tracking newlines.
fn skip_string(bytes: &[char], mut i: usize, line: &mut usize) -> usize {
    let n = bytes.len();
    i += 1;
    while i < n {
        match bytes[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    n
}

/// Skips a literal starting with `r`/`b`: raw strings (`r"…"`, `r#"…"#`),
/// byte strings (`b"…"`, `br#"…"#`), raw idents (`r#name`) and byte chars
/// (`b'x'`). Returns the index just past the literal.
fn skip_prefixed_literal(bytes: &[char], mut i: usize) -> usize {
    let n = bytes.len();
    // Consume the prefix letters.
    if bytes[i] == 'b' {
        i += 1;
    }
    if i < n && bytes[i] == 'r' {
        i += 1;
    }
    if i < n && bytes[i] == '\'' {
        // Byte char b'x' / b'\n'.
        i += 1;
        while i < n && bytes[i] != '\'' {
            if bytes[i] == '\\' {
                i += 1;
            }
            i += 1;
        }
        return (i + 1).min(n);
    }
    // Count `#`s of a raw string; `r#ident` has no quote after the hashes.
    let mut hashes = 0;
    while i < n && bytes[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= n || bytes[i] != '"' {
        // Raw identifier like r#type: lex as an ident (skipped — raw idents
        // are never rule words).
        while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
            i += 1;
        }
        return i;
    }
    i += 1; // opening quote
    while i < n {
        if bytes[i] == '"' {
            let mut k = 0;
            while k < hashes && i + 1 + k < n && bytes[i + 1 + k] == '#' {
                k += 1;
            }
            if k == hashes {
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    n
}

/// A parsed `lint:allow(rule): justification` tag.
struct AllowTag {
    rule: String,
    justified: bool,
    line: usize,
}

/// Extracts every `lint:allow(...)` tag from the comments.
fn allow_tags(comments: &[Comment]) -> Vec<AllowTag> {
    let mut tags = Vec::new();
    for c in comments {
        let mut rest = c.text.as_str();
        while let Some(pos) = rest.find("lint:allow(") {
            rest = &rest[pos + "lint:allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let rule = rest[..close].trim().to_string();
            let after = &rest[close + 1..];
            let justified = after
                .strip_prefix(':')
                .is_some_and(|j| !j.trim_start_matches(['/', '*']).trim().is_empty());
            tags.push(AllowTag {
                rule,
                justified,
                line: c.line,
            });
            rest = after;
        }
    }
    tags
}

/// Integer types an `as` cast may silently truncate a port index into.
const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Function names whose bodies are per-slot hot paths under the
/// `hot-path-alloc` rule: the primary scheduling methods and the switch
/// models' slot step.
const HOT_FNS: [&str; 3] = ["schedule_into", "schedule_weighted_into", "step"];

/// Lints one file's source text under `rules`, labeling findings with
/// `path_label`. This is the whole analysis — the binary only adds the
/// filesystem walk and per-path rule scoping.
pub fn lint_source(path_label: &str, source: &str, rules: &RuleSet) -> Vec<Finding> {
    let (toks, comments) = tokenize(source);
    let tags = allow_tags(&comments);
    let mut findings = Vec::new();

    // Malformed tags are findings themselves — a silent bad tag would
    // suppress nothing while looking like it does. Only checked where some
    // content rule applies: files outside every content scope (like this
    // crate's own docs) may mention tags illustratively.
    let content_rules = rules.hash_collections
        || rules.wall_clock
        || rules.no_panic
        || rules.truncating_cast
        || rules.hot_path_alloc;
    for t in tags.iter().filter(|_| content_rules) {
        if !rules::ALL.contains(&t.rule.as_str()) || !t.justified {
            findings.push(Finding {
                file: path_label.to_string(),
                line: t.line,
                rule: rules::BAD_ALLOW_TAG,
                excerpt: if t.justified {
                    format!("unknown rule `{}` in lint:allow tag", t.rule)
                } else {
                    format!("lint:allow({}) tag lacks a justification", t.rule)
                },
            });
        }
    }
    let allowed = |rule: &str, line: usize| {
        tags.iter()
            .any(|t| t.justified && t.rule == rule && (t.line == line || t.line + 1 == line))
    };
    let mut push = |rule: &'static str, line: usize, excerpt: String| {
        if !allowed(rule, line) {
            findings.push(Finding {
                file: path_label.to_string(),
                line,
                rule,
                excerpt,
            });
        }
    };

    if rules.forbid_unsafe {
        let want: Vec<Tok> = [
            Tok::Punct('#'),
            Tok::Punct('!'),
            Tok::Punct('['),
            Tok::Ident("forbid".into()),
            Tok::Punct('('),
            Tok::Ident("unsafe_code".into()),
            Tok::Punct(')'),
            Tok::Punct(']'),
        ]
        .into();
        let present = toks
            .windows(want.len())
            .any(|w| w.iter().map(|s| &s.tok).eq(want.iter()));
        if !present {
            push(
                rules::FORBID_UNSAFE,
                1,
                "crate root lacks #![forbid(unsafe_code)]".to_string(),
            );
        }
    }

    // Content rules, with test-gated items skipped. The `hot-path-alloc`
    // rule additionally tracks whether the scan is inside the body of a
    // per-slot hot function (`schedule_into`, `schedule_weighted_into`,
    // `step`): `pending_hot` is set between the function's name and its
    // opening brace (canceled by `;`, i.e. a bodiless trait declaration),
    // and `hot_exit_depth` remembers the brace depth the body closes at.
    let mut brace_depth = 0usize;
    let mut pending_hot = false;
    let mut hot_exit_depth: Option<usize> = None;
    let mut i = 0;
    while i < toks.len() {
        // `#[...]` outer attribute: if it mentions the `test` cfg, skip the
        // item it decorates (to the next `;` or over its `{ ... }` body).
        if toks[i].tok == Tok::Punct('#')
            && i + 1 < toks.len()
            && toks[i + 1].tok == Tok::Punct('[')
        {
            let mut j = i + 2;
            let mut depth = 1;
            let mut is_test = false;
            while j < toks.len() && depth > 0 {
                match &toks[j].tok {
                    Tok::Punct('[') => depth += 1,
                    Tok::Punct(']') => depth -= 1,
                    Tok::Ident(id) if id == "test" => is_test = true,
                    _ => {}
                }
                j += 1;
            }
            if is_test {
                i = skip_item(&toks, j);
            } else {
                i = j;
            }
            continue;
        }

        let line = toks[i].line;
        match &toks[i].tok {
            Tok::Punct('{') => {
                if pending_hot {
                    hot_exit_depth = hot_exit_depth.or(Some(brace_depth));
                    pending_hot = false;
                }
                brace_depth += 1;
            }
            Tok::Punct('}') => {
                brace_depth = brace_depth.saturating_sub(1);
                if hot_exit_depth == Some(brace_depth) {
                    hot_exit_depth = None;
                }
            }
            Tok::Punct(';') => pending_hot = false,
            _ => {}
        }
        let in_hot = rules.hot_path_alloc && hot_exit_depth.is_some();
        if let Tok::Ident(id) = &toks[i].tok {
            let next = toks.get(i + 1).map(|s| &s.tok);
            match id.as_str() {
                "fn" if rules.hot_path_alloc => {
                    if let Some(Tok::Ident(name)) = next {
                        if HOT_FNS.contains(&name.as_str()) {
                            pending_hot = true;
                        }
                    }
                }
                "Matching"
                    if in_hot
                        && toks.get(i + 1).map(|s| &s.tok) == Some(&Tok::Punct(':'))
                        && toks.get(i + 2).map(|s| &s.tok) == Some(&Tok::Punct(':'))
                        && matches!(toks.get(i + 3).map(|s| &s.tok),
                            Some(Tok::Ident(m)) if m == "new") =>
                {
                    push(
                        rules::HOT_PATH_ALLOC,
                        line,
                        "Matching::new in a hot function".to_string(),
                    );
                }
                "vec" if in_hot && next == Some(&Tok::Punct('!')) => {
                    push(
                        rules::HOT_PATH_ALLOC,
                        line,
                        "vec! allocation in a hot function".to_string(),
                    );
                }
                "with_capacity" if in_hot => {
                    push(
                        rules::HOT_PATH_ALLOC,
                        line,
                        "with_capacity allocation in a hot function".to_string(),
                    );
                }
                "HashMap" | "HashSet" if rules.hash_collections => {
                    push(rules::HASH_COLLECTIONS, line, format!("use of {id}"));
                }
                "SystemTime" | "Instant" if rules.wall_clock => {
                    push(rules::WALL_CLOCK, line, format!("use of {id}"));
                }
                "unwrap" | "expect" if rules.no_panic && next == Some(&Tok::Punct('(')) => {
                    push(rules::NO_PANIC, line, format!("call to {id}()"));
                }
                "panic" if rules.no_panic && next == Some(&Tok::Punct('!')) => {
                    push(rules::NO_PANIC, line, "panic! invocation".to_string());
                }
                "as" if rules.truncating_cast => {
                    if let Some(Tok::Ident(ty)) = next {
                        if NARROW_INTS.contains(&ty.as_str()) {
                            push(
                                rules::TRUNCATING_CAST,
                                line,
                                format!("truncating cast `as {ty}`"),
                            );
                        }
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }

    findings
}

/// Skips one item starting at token `i` (just past its attributes): either
/// a declaration ending in `;` before any brace, or a braced body. Also
/// consumes any further attributes (`#[test] #[should_panic] fn ...`).
fn skip_item(toks: &[Spanned], mut i: usize) -> usize {
    let n = toks.len();
    // Further attributes on the same item.
    while i + 1 < n && toks[i].tok == Tok::Punct('#') && toks[i + 1].tok == Tok::Punct('[') {
        let mut depth = 1;
        i += 2;
        while i < n && depth > 0 {
            match toks[i].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => depth -= 1,
                _ => {}
            }
            i += 1;
        }
    }
    let mut depth = 0usize;
    while i < n {
        match toks[i].tok {
            Tok::Punct(';') if depth == 0 => return i + 1,
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_all(src: &str) -> Vec<Finding> {
        lint_source("t.rs", src, &RuleSet::all())
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    const PREAMBLE: &str = "#![forbid(unsafe_code)]\n";

    #[test]
    fn clean_source_passes() {
        let src = format!("{PREAMBLE}pub fn f(x: usize) -> usize {{ x + 1 }}\n");
        assert!(lint_all(&src).is_empty());
    }

    #[test]
    fn hash_collections_flagged() {
        let src = format!("{PREAMBLE}use std::collections::HashMap;\n");
        let f = lint_all(&src);
        assert_eq!(rules_of(&f), [rules::HASH_COLLECTIONS]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn words_in_comments_and_strings_ignored() {
        let src = format!(
            "{PREAMBLE}// HashMap unwrap() panic! Instant as u8\n\
             /* nested /* HashSet */ still comment */\n\
             const S: &str = \"HashMap unwrap() as u16\";\n\
             const R: &str = r#\"Instant \" panic!\"#;\n"
        );
        assert!(lint_all(&src).is_empty(), "{:?}", lint_all(&src));
    }

    #[test]
    fn no_panic_catches_calls_but_not_lookalikes() {
        let src = format!(
            "{PREAMBLE}fn f(o: Option<u64>) -> u64 {{\n\
             o.unwrap_or(3); o.expect_none_hypothetical; o.unwrap()\n\
             }}\n"
        );
        let f = lint_all(&src);
        assert_eq!(rules_of(&f), [rules::NO_PANIC]);
        assert!(f[0].excerpt.contains("unwrap()"));
    }

    #[test]
    fn panic_macro_flagged() {
        let src = format!("{PREAMBLE}fn f() {{ panic!(\"boom\") }}\n");
        assert_eq!(rules_of(&lint_all(&src)), [rules::NO_PANIC]);
    }

    #[test]
    fn truncating_cast_flagged_narrow_only() {
        let src = format!(
            "{PREAMBLE}fn f(x: usize) {{ let _ = x as u32; let _ = x as u64; let _ = x as f64; }}\n"
        );
        let f = lint_all(&src);
        assert_eq!(rules_of(&f), [rules::TRUNCATING_CAST]);
        assert!(f[0].excerpt.contains("as u32"));
    }

    #[test]
    fn numeric_suffixes_are_not_casts() {
        let src = format!("{PREAMBLE}const X: u32 = 0u32; const Y: u8 = 7u8;\n");
        assert!(lint_all(&src).is_empty());
    }

    #[test]
    fn wall_clock_flagged() {
        let src = format!("{PREAMBLE}use std::time::Instant;\n");
        assert_eq!(rules_of(&lint_all(&src)), [rules::WALL_CLOCK]);
    }

    #[test]
    fn missing_forbid_unsafe_flagged() {
        let f = lint_all("pub fn f() {}\n");
        assert_eq!(rules_of(&f), [rules::FORBID_UNSAFE]);
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = format!(
            "{PREAMBLE}#[cfg(test)]\nmod tests {{\n  #[test]\n  fn t() {{ Some(1).unwrap(); panic!(); }}\n}}\n"
        );
        assert!(lint_all(&src).is_empty(), "{:?}", lint_all(&src));
    }

    #[test]
    fn test_fn_with_extra_attrs_skipped() {
        let src = format!(
            "{PREAMBLE}#[test]\n#[should_panic(expected = \"x\")]\nfn t() {{ Some(1).unwrap() }}\n\
             fn live() {{ Some(1).unwrap(); }}\n"
        );
        let f = lint_all(&src);
        assert_eq!(rules_of(&f), [rules::NO_PANIC]);
        assert_eq!(f[0].line, 5, "only the non-test fn fires");
    }

    #[test]
    fn allow_tag_suppresses_same_and_next_line() {
        let trailing = format!(
            "{PREAMBLE}fn f() {{ Some(1).unwrap(); }} // lint:allow(no-panic): invariant documented here\n"
        );
        assert!(lint_all(&trailing).is_empty());
        let above = format!(
            "{PREAMBLE}// lint:allow(truncating-cast): ids fit in u8 by construction\nfn f(x: usize) -> u8 {{ x as u8 }}\n"
        );
        assert!(lint_all(&above).is_empty());
    }

    #[test]
    fn allow_tag_does_not_leak_past_next_line() {
        let src = format!(
            "{PREAMBLE}// lint:allow(no-panic): only covers the next line\nfn f() {{}}\nfn g() {{ Some(1).unwrap(); }}\n"
        );
        assert_eq!(rules_of(&lint_all(&src)), [rules::NO_PANIC]);
    }

    #[test]
    fn unjustified_or_unknown_allow_tags_are_findings() {
        let src = format!("{PREAMBLE}// lint:allow(no-panic):\nfn f() {{}}\n");
        assert_eq!(rules_of(&lint_all(&src)), [rules::BAD_ALLOW_TAG]);
        let src = format!("{PREAMBLE}// lint:allow(made-up-rule): because\nfn f() {{}}\n");
        assert_eq!(rules_of(&lint_all(&src)), [rules::BAD_ALLOW_TAG]);
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = format!(
            "{PREAMBLE}fn f<'a>(x: &'a [usize]) -> impl Iterator<Item = usize> + 'a {{\n\
             x.iter().map(|v| *v as u32 as usize)\n}}\n"
        );
        // The cast after the lifetimes must still be seen.
        assert_eq!(rules_of(&lint_all(&src)), [rules::TRUNCATING_CAST]);
    }

    #[test]
    fn char_literals_do_not_eat_code() {
        let src = format!(
            "{PREAMBLE}fn f(c: char) -> bool {{ c == '\\'' || c == '(' || c == 'x' }}\n\
             fn g() {{ Some(1).unwrap(); }}\n"
        );
        let f = lint_all(&src);
        assert_eq!(rules_of(&f), [rules::NO_PANIC]);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn scoped_rulesets_only_fire_enabled_rules() {
        let src = "use std::collections::HashMap;\nfn f() { Some(1).unwrap(); }\n";
        let only_hash = RuleSet {
            hash_collections: true,
            ..RuleSet::default()
        };
        let f = lint_source("t.rs", src, &only_hash);
        assert_eq!(rules_of(&f), [rules::HASH_COLLECTIONS]);
    }

    #[test]
    fn byte_and_raw_literals_skipped() {
        let src = format!(
            "{PREAMBLE}const A: &[u8] = b\"HashMap\";\nconst B: u8 = b'H';\nconst C: &str = r\"unwrap()\";\n"
        );
        assert!(lint_all(&src).is_empty(), "{:?}", lint_all(&src));
    }

    #[test]
    fn hot_path_alloc_flags_allocation_in_hot_fns() {
        let src = format!(
            "{PREAMBLE}fn schedule_into(&mut self, r: &R, out: &mut Matching) {{\n\
             let m = Matching::new(8);\n\
             let v = vec![0; 8];\n\
             let w = Vec::with_capacity(8);\n\
             }}\n"
        );
        let f = lint_all(&src);
        assert_eq!(
            rules_of(&f),
            [
                rules::HOT_PATH_ALLOC,
                rules::HOT_PATH_ALLOC,
                rules::HOT_PATH_ALLOC
            ]
        );
        assert_eq!(f[0].line, 3);
        assert!(f[0].excerpt.contains("Matching::new"));
        assert!(f[1].excerpt.contains("vec!"));
        assert!(f[2].excerpt.contains("with_capacity"));
    }

    #[test]
    fn hot_path_alloc_covers_step_and_weighted_into() {
        let src = format!(
            "{PREAMBLE}fn step(&mut self) {{ let v = vec![1]; }}\n\
             fn schedule_weighted_into(&mut self) {{ let m = Matching::new(4); }}\n"
        );
        assert_eq!(
            rules_of(&lint_all(&src)),
            [rules::HOT_PATH_ALLOC, rules::HOT_PATH_ALLOC]
        );
    }

    #[test]
    fn hot_path_alloc_ignores_cold_fns_and_trait_decls() {
        let src = format!(
            "{PREAMBLE}trait S {{ fn schedule_into(&mut self, out: &mut Matching); }}\n\
             fn new(n: usize) -> Vec<usize> {{ Vec::with_capacity(n) }}\n\
             fn schedule(&mut self) -> Matching {{ Matching::new(8) }}\n\
             fn after_the_decl() {{ let v = vec![0]; }}\n"
        );
        assert!(lint_all(&src).is_empty(), "{:?}", lint_all(&src));
    }

    #[test]
    fn hot_path_alloc_scope_ends_with_the_body() {
        let src = format!(
            "{PREAMBLE}fn step(&mut self) {{ if x {{ f(); }} }}\n\
             fn cold() {{ let v = vec![0]; }}\n"
        );
        assert!(lint_all(&src).is_empty(), "{:?}", lint_all(&src));
    }

    #[test]
    fn hot_path_alloc_allow_tag_works() {
        let src = format!(
            "{PREAMBLE}fn step(&mut self) {{\n\
             // lint:allow(hot-path-alloc): one-time lazy growth, amortized to zero\n\
             let v = vec![0; 8];\n\
             }}\n"
        );
        assert!(lint_all(&src).is_empty(), "{:?}", lint_all(&src));
    }

    #[test]
    fn finding_display_is_grep_friendly() {
        let f = Finding {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            rule: rules::NO_PANIC,
            excerpt: "call to unwrap()".into(),
        };
        assert_eq!(
            f.to_string(),
            "crates/x/src/lib.rs:7: [no-panic] call to unwrap()"
        );
    }
}
