//! A lightweight Rust *item* parser on top of [`crate::lex`].
//!
//! Recovers just enough structure for the semantic lint rules — no
//! expression trees, no type resolution:
//!
//! * every `fn` item with its name, signature line, body token span, and
//!   the impl type that owns it (`impl Foo { fn bar }` → owner `Foo`);
//! * the module tree's *cfg gates*: whether each item is (transitively)
//!   behind `#[cfg(test)]`/`#[test]` or `#[cfg(feature = "telemetry")]`,
//!   including statement-level gates inside fn bodies;
//! * out-of-line `mod name;` declarations with their cfg gates, so a
//!   crate-level caller can propagate a gate from `lib.rs` onto the
//!   child file;
//! * token spans of test-gated and telemetry-gated regions, which the
//!   token-scanning rules use to skip or admit matches.
//!
//! The parser is resilient by construction: it walks the token stream with
//! balanced-delimiter tracking and treats anything it does not recognize
//! as opaque tokens, so malformed or exotic input degrades to "no
//! structure recovered" rather than a panic.

use crate::lex::{Spanned, Tok};

/// Inherited cfg gates at some point in the item tree.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Gates {
    /// Behind `#[test]` or a `test` cfg: skipped by every content rule.
    pub test: bool,
    /// Behind `#[cfg(feature = "telemetry")]` (directly or via an
    /// ancestor item).
    pub telemetry: bool,
}

impl Gates {
    fn union(self, other: Gates) -> Gates {
        Gates {
            test: self.test || other.test,
            telemetry: self.telemetry || other.telemetry,
        }
    }
}

/// One parsed `fn` item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The self type of the enclosing `impl` block, if any (last path
    /// segment: `impl Traffic for FastBernoulli` → `FastBernoulli`).
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based line of the body's closing brace (or of the trailing `;`
    /// for bodiless trait declarations).
    pub end_line: usize,
    /// Token index range `[open, close]` of the `{ ... }` body; `None`
    /// for bodiless declarations.
    pub body: Option<(usize, usize)>,
    /// Effective cfg gates (own attributes unioned with every ancestor's).
    pub gates: Gates,
}

/// An out-of-line `mod name;` declaration.
#[derive(Clone, Debug)]
pub struct ModDecl {
    /// The module name (child file `name.rs` or `name/mod.rs`).
    pub name: String,
    /// 1-based line of the declaration.
    pub line: usize,
    /// Effective cfg gates on the declaration.
    pub gates: Gates,
}

/// The recovered structure of one source file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// Every `fn` item, in source order (nested fns included).
    pub fns: Vec<FnItem>,
    /// Out-of-line module declarations.
    pub mod_decls: Vec<ModDecl>,
    /// Token index spans (inclusive) of test-gated regions.
    pub test_spans: Vec<(usize, usize)>,
    /// Token index spans (inclusive) of telemetry-gated regions.
    pub telemetry_spans: Vec<(usize, usize)>,
}

impl ParsedFile {
    /// Whether the token at `idx` lies inside a test-gated region.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_spans.iter().any(|&(a, b)| a <= idx && idx <= b)
    }

    /// Whether the token at `idx` lies inside a telemetry-gated region.
    pub fn in_telemetry_gate(&self, idx: usize) -> bool {
        self.telemetry_spans
            .iter()
            .any(|&(a, b)| a <= idx && idx <= b)
    }
}

/// Parses the token stream of one file.
pub fn parse(toks: &[Spanned]) -> ParsedFile {
    let mut p = Parser {
        toks,
        out: ParsedFile::default(),
    };
    p.region(0, Gates::default(), None);
    p.out
}

/// One parsed attribute: its content tokens (between `[` and `]`).
struct Attr {
    toks: Vec<Tok>,
}

impl Attr {
    fn first_ident(&self) -> Option<&str> {
        self.toks.iter().find_map(|t| match t {
            Tok::Ident(i) => Some(i.as_str()),
            _ => None,
        })
    }

    fn contains_ident(&self, name: &str) -> bool {
        self.toks
            .iter()
            .any(|t| matches!(t, Tok::Ident(i) if i == name))
    }

    /// `#[test]`, or a `cfg(...)` that names `test` positively.
    /// `cfg_attr(test, ...)` only *adds an attribute* under test and must
    /// not gate the item out of linting; `cfg(not(test))` code is live in
    /// production and must stay linted.
    fn is_test_gate(&self) -> bool {
        match self.first_ident() {
            Some("test") => true,
            Some("cfg") => self.contains_ident("test") && !self.contains_ident("not"),
            _ => false,
        }
    }

    /// A `cfg(...)` that requires `feature = "telemetry"` positively.
    fn is_telemetry_gate(&self) -> bool {
        self.first_ident() == Some("cfg")
            && self.contains_ident("feature")
            && !self.contains_ident("not")
            && self
                .toks
                .iter()
                .any(|t| matches!(t, Tok::Str(s) if s == "telemetry"))
    }

    fn gates(&self) -> Gates {
        Gates {
            test: self.is_test_gate(),
            telemetry: self.is_telemetry_gate(),
        }
    }
}

struct Parser<'t> {
    toks: &'t [Spanned],
    out: ParsedFile,
}

impl Parser<'_> {
    fn tok(&self, i: usize) -> Option<&Tok> {
        self.toks.get(i).map(|s| &s.tok)
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        self.tok(i) == Some(&Tok::Punct(c))
    }

    fn line(&self, i: usize) -> usize {
        self.toks
            .get(i.min(self.toks.len().saturating_sub(1)))
            .map(|s| s.line)
            .unwrap_or(1)
    }

    /// Records gate spans introduced *here* (not inherited — the outer
    /// item's span already covers inherited gates).
    fn record_gate_spans(&mut self, own: Gates, inherited: Gates, span: (usize, usize)) {
        if own.test && !inherited.test {
            self.out.test_spans.push(span);
        }
        if own.telemetry && !inherited.telemetry {
            self.out.telemetry_spans.push(span);
        }
    }

    /// Parses one `#[...]` / `#![...]` attribute starting at the `#`.
    /// Returns `(attr, inner, next_index)`.
    fn attr(&self, i: usize) -> (Attr, bool, usize) {
        let mut j = i + 1;
        let inner = self.is_punct(j, '!');
        if inner {
            j += 1;
        }
        // Caller guarantees `[` here; defensive anyway.
        if !self.is_punct(j, '[') {
            return (Attr { toks: Vec::new() }, inner, i + 1);
        }
        j += 1;
        let mut depth = 1usize;
        let mut toks = Vec::new();
        while j < self.toks.len() && depth > 0 {
            match &self.toks[j].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            toks.push(self.toks[j].tok.clone());
            j += 1;
        }
        (Attr { toks }, inner, j)
    }

    /// Walks the contents of one brace-delimited region starting at `i`
    /// (just past the `{`, or 0 at the top level), recording items.
    /// Returns the index of the matching close brace (or `toks.len()`).
    fn region(&mut self, mut i: usize, gates: Gates, owner: Option<&str>) -> usize {
        let n = self.toks.len();
        let mut attrs: Vec<Attr> = Vec::new();
        let mut attr_start = 0usize;
        // () / [] nesting: `;` and `,` only end an attribute's target at
        // depth 0 (think `[u8; 4]` or `foo(a, b)`).
        let mut paren = 0usize;
        while i < n {
            match &self.toks[i].tok {
                Tok::Punct('#')
                    if self.is_punct(i + 1, '[')
                        || (self.is_punct(i + 1, '!') && self.is_punct(i + 2, '[')) =>
                {
                    let (attr, inner, j) = self.attr(i);
                    if !inner {
                        if attrs.is_empty() {
                            attr_start = i;
                        }
                        attrs.push(attr);
                    }
                    i = j;
                }
                Tok::Punct('(') | Tok::Punct('[') => {
                    paren += 1;
                    i += 1;
                }
                Tok::Punct(')') | Tok::Punct(']') => {
                    paren = paren.saturating_sub(1);
                    i += 1;
                }
                Tok::Punct('{') => {
                    let own = attrs
                        .iter()
                        .fold(Gates::default(), |g, a| g.union(a.gates()));
                    let close = self.region(i + 1, gates.union(own), owner);
                    let start = if attrs.is_empty() { i } else { attr_start };
                    self.record_gate_spans(own, gates, (start, close));
                    attrs.clear();
                    i = close + 1;
                }
                Tok::Punct('}') => return i,
                Tok::Punct(';') | Tok::Punct(',') if paren == 0 => {
                    if !attrs.is_empty() {
                        let own = attrs
                            .iter()
                            .fold(Gates::default(), |g, a| g.union(a.gates()));
                        self.record_gate_spans(own, gates, (attr_start, i));
                        attrs.clear();
                    }
                    i += 1;
                }
                Tok::Ident(id) if id == "fn" && matches!(self.tok(i + 1), Some(Tok::Ident(_))) => {
                    let own = attrs
                        .iter()
                        .fold(Gates::default(), |g, a| g.union(a.gates()));
                    let start = if attrs.is_empty() { i } else { attr_start };
                    attrs.clear();
                    i = self.fn_item(i, start, gates, own, owner);
                }
                Tok::Ident(id) if id == "mod" && matches!(self.tok(i + 1), Some(Tok::Ident(_))) => {
                    let own = attrs
                        .iter()
                        .fold(Gates::default(), |g, a| g.union(a.gates()));
                    let start = if attrs.is_empty() { i } else { attr_start };
                    attrs.clear();
                    i = self.mod_item(i, start, gates, own);
                }
                Tok::Ident(id) if id == "impl" => {
                    let own = attrs
                        .iter()
                        .fold(Gates::default(), |g, a| g.union(a.gates()));
                    let start = if attrs.is_empty() { i } else { attr_start };
                    attrs.clear();
                    i = self.impl_item(i, start, gates, own);
                }
                Tok::Ident(id)
                    if id == "trait" && matches!(self.tok(i + 1), Some(Tok::Ident(_))) =>
                {
                    let own = attrs
                        .iter()
                        .fold(Gates::default(), |g, a| g.union(a.gates()));
                    let start = if attrs.is_empty() { i } else { attr_start };
                    attrs.clear();
                    i = self.header_block(i + 1, start, gates, own, None);
                }
                _ => i += 1,
            }
        }
        n
    }

    /// Parses a `fn` item starting at the `fn` keyword. `span_start` is
    /// where the item's attributes began (for gate spans).
    fn fn_item(
        &mut self,
        i: usize,
        span_start: usize,
        inherited: Gates,
        own: Gates,
        owner: Option<&str>,
    ) -> usize {
        let n = self.toks.len();
        let name = match self.tok(i + 1) {
            Some(Tok::Ident(id)) => id.clone(),
            _ => return i + 1,
        };
        let line = self.line(i);
        let gates = inherited.union(own);
        // Scan the signature for the body `{` or a terminating `;`,
        // ignoring both inside () / [] groups (`[u8; 4]`, parameters).
        let mut j = i + 2;
        let mut depth = 0usize;
        let mut body: Option<(usize, usize)> = None;
        let mut end = n.saturating_sub(1);
        while j < n {
            match &self.toks[j].tok {
                Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                Tok::Punct(')') | Tok::Punct(']') => depth = depth.saturating_sub(1),
                Tok::Punct('{') if depth == 0 => {
                    let close = self.region(j + 1, gates, owner);
                    body = Some((j, close));
                    end = close;
                    break;
                }
                Tok::Punct(';') if depth == 0 => {
                    end = j;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        self.record_gate_spans(own, inherited, (span_start, end));
        self.out.fns.push(FnItem {
            name,
            owner: owner.map(str::to_string),
            line,
            end_line: self.line(end),
            body,
            gates,
        });
        end + 1
    }

    /// Parses a `mod` item starting at the `mod` keyword: either an
    /// out-of-line declaration (`mod name;`) or an inline block.
    fn mod_item(&mut self, i: usize, span_start: usize, inherited: Gates, own: Gates) -> usize {
        let name = match self.tok(i + 1) {
            Some(Tok::Ident(id)) => id.clone(),
            _ => return i + 1,
        };
        let line = self.line(i);
        let gates = inherited.union(own);
        if self.is_punct(i + 2, ';') {
            self.record_gate_spans(own, inherited, (span_start, i + 2));
            self.out.mod_decls.push(ModDecl { name, line, gates });
            return i + 3;
        }
        if self.is_punct(i + 2, '{') {
            let close = self.region(i + 3, gates, None);
            self.record_gate_spans(own, inherited, (span_start, close));
            return close + 1;
        }
        i + 2
    }

    /// Parses an `impl` block starting at the `impl` keyword, resolving
    /// the self type (the ident after `for` if present, else the first
    /// path ident after the generics) as the owner for contained fns.
    fn impl_item(&mut self, i: usize, span_start: usize, inherited: Gates, own: Gates) -> usize {
        let n = self.toks.len();
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut prev_dash = false;
        let mut owner: Option<String> = None;
        let mut in_where = false;
        while j < n {
            match &self.toks[j].tok {
                Tok::Punct('<') => angle += 1,
                // `->` in a generic bound (`Fn() -> u32`) is not a
                // closing angle bracket.
                Tok::Punct('>') if !prev_dash => angle -= 1,
                Tok::Punct('{') if angle <= 0 => break,
                Tok::Punct(';') if angle <= 0 => return j + 1, // `impl Foo;` — malformed, bail
                Tok::Ident(id) if angle <= 0 => match id.as_str() {
                    "for" => owner = None,
                    "where" => in_where = true,
                    _ if !in_where => owner = Some(id.clone()),
                    _ => {}
                },
                _ => {}
            }
            prev_dash = self.toks[j].tok == Tok::Punct('-');
            j += 1;
        }
        if j >= n {
            return n;
        }
        let gates = inherited.union(own);
        let close = self.region(j + 1, gates, owner.as_deref());
        self.record_gate_spans(own, inherited, (span_start, close));
        close + 1
    }

    /// Parses a header followed by a block (used for `trait` items): scans
    /// angle-aware to the opening `{`, then recurses.
    fn header_block(
        &mut self,
        mut j: usize,
        span_start: usize,
        inherited: Gates,
        own: Gates,
        owner: Option<&str>,
    ) -> usize {
        let n = self.toks.len();
        let mut angle = 0i32;
        let mut prev_dash = false;
        while j < n {
            match &self.toks[j].tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') if !prev_dash => angle -= 1,
                Tok::Punct('{') if angle <= 0 => break,
                Tok::Punct(';') if angle <= 0 => return j + 1,
                _ => {}
            }
            prev_dash = self.toks[j].tok == Tok::Punct('-');
            j += 1;
        }
        if j >= n {
            return n;
        }
        let gates = inherited.union(own);
        let close = self.region(j + 1, gates, owner);
        self.record_gate_spans(own, inherited, (span_start, close));
        close + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::tokenize;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&tokenize(src).0)
    }

    fn fn_named<'a>(p: &'a ParsedFile, name: &str) -> &'a FnItem {
        p.fns
            .iter()
            .find(|f| f.name == name)
            .unwrap_or_else(|| panic!("fn `{name}` not found in {:?}", p.fns))
    }

    #[test]
    fn plain_fn_has_body_span() {
        let p = parse_src("fn f(x: usize) -> usize { x + 1 }\n");
        let f = fn_named(&p, "f");
        assert!(f.body.is_some());
        assert_eq!(f.owner, None);
        assert!(!f.gates.test && !f.gates.telemetry);
    }

    #[test]
    fn trait_decl_fn_has_no_body() {
        let p = parse_src("trait S { fn schedule_into(&mut self, out: &mut M); }\n");
        assert!(fn_named(&p, "schedule_into").body.is_none());
    }

    #[test]
    fn impl_owner_resolved_plain_and_for() {
        let p = parse_src(
            "impl DestPattern { fn sample(&self) {} }\n\
             impl Traffic for FastBernoulli { fn arrival(&mut self) {} }\n\
             impl<S: Scheduler + ?Sized> Scheduler for Box<S> { fn schedule_into(&mut self) {} }\n",
        );
        assert_eq!(fn_named(&p, "sample").owner.as_deref(), Some("DestPattern"));
        assert_eq!(
            fn_named(&p, "arrival").owner.as_deref(),
            Some("FastBernoulli")
        );
        assert_eq!(fn_named(&p, "schedule_into").owner.as_deref(), Some("Box"));
    }

    #[test]
    fn impl_with_arrow_in_generics() {
        let p = parse_src("impl<F: FnMut() -> u32> Sampler<F> { fn draw(&mut self) {} }\n");
        assert_eq!(fn_named(&p, "draw").owner.as_deref(), Some("Sampler"));
    }

    #[test]
    fn impl_where_clause_does_not_steal_owner() {
        let p = parse_src("impl<T> Wrap<T> where T: Clone { fn get(&self) {} }\n");
        assert_eq!(fn_named(&p, "get").owner.as_deref(), Some("Wrap"));
    }

    #[test]
    fn cfg_test_mod_gates_children() {
        let p = parse_src(
            "#[cfg(test)]\nmod tests { fn helper() {} #[test] fn t() {} }\nfn live() {}\n",
        );
        assert!(fn_named(&p, "helper").gates.test);
        assert!(fn_named(&p, "t").gates.test);
        assert!(!fn_named(&p, "live").gates.test);
    }

    #[test]
    fn cfg_attr_is_not_a_test_gate() {
        let p = parse_src("#[cfg_attr(test, allow(dead_code))]\nfn live() {}\n");
        assert!(!fn_named(&p, "live").gates.test);
        assert!(p.test_spans.is_empty());
    }

    #[test]
    fn cfg_not_test_is_not_a_test_gate() {
        let p = parse_src("#[cfg(not(test))]\nfn live() {}\n");
        assert!(!fn_named(&p, "live").gates.test);
    }

    #[test]
    fn telemetry_gate_on_fn_and_use() {
        let src = "#[cfg(feature = \"telemetry\")]\nfn probe() {}\n\
                   #[cfg(feature = \"telemetry\")]\nuse lcf_telemetry::Event;\n\
                   fn cold() {}\n";
        let p = parse_src(src);
        assert!(fn_named(&p, "probe").gates.telemetry);
        assert!(!fn_named(&p, "cold").gates.telemetry);
        // The `use` statement's span is recorded even without an item keyword.
        assert_eq!(p.telemetry_spans.len(), 2);
    }

    #[test]
    fn telemetry_gate_on_statement_block() {
        let src =
            "fn f() {\n  let x = 1;\n  #[cfg(feature = \"telemetry\")]\n  { record(x); }\n}\n";
        let p = parse_src(src);
        assert_eq!(p.telemetry_spans.len(), 1);
        let f = fn_named(&p, "f");
        let (a, b) = p.telemetry_spans[0];
        let (fa, fb) = f.body.unwrap();
        assert!(fa < a && b < fb, "stmt gate nested inside the fn body");
    }

    #[test]
    fn cfg_not_feature_is_not_a_telemetry_gate() {
        let p = parse_src("#[cfg(not(feature = \"telemetry\"))]\nfn stub() {}\n");
        assert!(!fn_named(&p, "stub").gates.telemetry);
    }

    #[test]
    fn mod_decls_carry_gates() {
        let src = "#[cfg(feature = \"telemetry\")]\npub mod telemetry;\npub mod traits;\n";
        let p = parse_src(src);
        assert_eq!(p.mod_decls.len(), 2);
        assert!(p.mod_decls[0].gates.telemetry);
        assert_eq!(p.mod_decls[0].name, "telemetry");
        assert!(!p.mod_decls[1].gates.telemetry);
    }

    #[test]
    fn array_semicolons_do_not_end_fn_signatures() {
        let p = parse_src("fn f(x: [u8; 4]) -> [u32; BLOCK_WORDS] { g() }\n");
        assert!(fn_named(&p, "f").body.is_some());
    }

    #[test]
    fn nested_fns_and_closures_are_recovered() {
        let src = "fn outer() {\n  #[inline(always)]\n  fn inner(x: u32) -> u32 { x }\n  let c = |v: u32| { inner(v) };\n}\n";
        let p = parse_src(src);
        assert!(p.fns.iter().any(|f| f.name == "inner"));
        assert!(p.fns.iter().any(|f| f.name == "outer"));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let p = parse_src("type F = fn(u32) -> bool;\nfn real() {}\n");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
    }

    #[test]
    fn match_arms_with_struct_patterns_do_not_derail() {
        let src = "fn f(s: S) -> usize {\n  match s {\n    S::On { dst } => dst,\n    S::Off => 0,\n  }\n}\nfn g() {}\n";
        let p = parse_src(src);
        assert_eq!(p.fns.len(), 2);
        assert!(fn_named(&p, "f").body.is_some());
    }

    #[test]
    fn const_generic_impl_headers() {
        let p =
            parse_src("impl<const ROUNDS: u32> ChaChaRng<ROUNDS> { fn next_u32(&mut self) {} }\n");
        assert_eq!(fn_named(&p, "next_u32").owner.as_deref(), Some("ChaChaRng"));
    }

    #[test]
    fn multi_segment_paths_in_bodies_are_opaque() {
        let p = parse_src("fn f() { let x = std::collections::BTreeMap::new(); }\n");
        assert_eq!(p.fns.len(), 1);
        assert!(p.fns[0].body.is_some());
    }

    #[test]
    fn end_line_tracks_the_close_brace() {
        let p = parse_src("fn f() {\n  g();\n  h();\n}\n");
        let f = fn_named(&p, "f");
        assert_eq!(f.line, 1);
        assert_eq!(f.end_line, 4);
    }

    #[test]
    fn unbalanced_input_terminates() {
        for src in [
            "fn f() {",
            "impl Foo {",
            "fn f(",
            "}}}",
            "#[cfg(test)",
            "mod m",
            "fn",
            "impl",
        ] {
            let _ = parse_src(src);
        }
    }
}
