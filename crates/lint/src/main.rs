//! The `lcf-lint` binary: walks the workspace and enforces the repo's
//! determinism and robustness rules (see the `lcf_lint` crate docs).
//!
//! Usage:
//!
//! ```text
//! cargo run -p lcf-lint                    # lint the whole workspace (scoped rules)
//! cargo run -p lcf-lint -- FILE...         # lint specific files with ALL rules
//! cargo run -p lcf-lint -- --format github # emit ::error annotations for CI
//! cargo run -p lcf-lint -- --self-test
//! ```
//!
//! Exits non-zero iff any finding is reported (or the self-test fails).
//!
//! Workspace mode parses every file first, then lints **per crate**, so
//! the call-graph `hot-path-alloc` rule can follow `schedule_into` →
//! helper calls across sibling modules. Parent-file `mod` declarations
//! are honored: a module declared behind `#[cfg(feature = "telemetry")]`
//! (like `core/src/telemetry.rs`) is exempt from `telemetry-hygiene`,
//! and a module declared behind `#[cfg(test)]` is skipped entirely.

#![forbid(unsafe_code)]

use lcf_lint::{lint_files, lint_source, rules, Finding, RuleSet, SourceFile};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The seeded-violation fixture, embedded so `--self-test` needs no path
/// guessing. At least one violation per rule family, plus correctly
/// tagged/gated constructs that must NOT fire.
const SELF_TEST_FIXTURE: &str = include_str!("../fixtures/seeded.rs");

/// Directories never linted: build output, VCS metadata, stored baselines,
/// and test-only trees (tests/, benches/, examples/, fixtures/ — the rules
/// target library and binary code).
const SKIP_DIRS: [&str; 7] = [
    "target",
    ".git",
    ".bench-baseline",
    "fixtures",
    "tests",
    "benches",
    "examples",
];

/// Output format for findings.
#[derive(Clone, Copy, PartialEq)]
enum Format {
    /// `file:line: [rule] excerpt` lines.
    Plain,
    /// GitHub Actions `::error file=...,line=...` annotations, so findings
    /// surface inline on PRs.
    Github,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format = Format::Plain;
    let mut files: Vec<String> = Vec::new();
    let mut self_test_mode = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--self-test" => self_test_mode = true,
            "--format" => match it.next().as_deref() {
                Some("github") => format = Format::Github,
                Some("plain") => format = Format::Plain,
                other => {
                    eprintln!("lcf-lint: unknown format {other:?} (expected github|plain)");
                    std::process::exit(2);
                }
            },
            _ => files.push(a),
        }
    }
    let code = if self_test_mode {
        self_test()
    } else if files.is_empty() {
        lint_workspace(format)
    } else {
        lint_file_args(&files, format)
    };
    std::process::exit(code);
}

/// Lints the whole workspace with path-scoped rules. Returns the exit code.
fn lint_workspace(format: Format) -> i32 {
    let root = workspace_root();
    let mut paths = Vec::new();
    collect_rs_files(&root, &mut paths);
    paths.sort();

    // Parse every in-scope file up front.
    let mut findings = Vec::new();
    let mut parsed: Vec<(SourceFile, RuleSet)> = Vec::new();
    for path in &paths {
        let label = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .display()
            .to_string()
            .replace('\\', "/");
        let ruleset = scope_for(&label);
        if ruleset.is_empty() {
            continue;
        }
        match std::fs::read_to_string(path) {
            Ok(src) => parsed.push((SourceFile::parse(&label, &src), ruleset)),
            Err(e) => findings.push(Finding {
                file: label,
                line: 0,
                rule: "io-error",
                excerpt: e.to_string(),
            }),
        }
    }

    // Honor cfg gates on parent-file `mod` declarations: a child file whose
    // declaration is telemetry-gated may use lcf_telemetry freely; one whose
    // declaration is test-gated is test-only code and skipped entirely.
    let mut telemetry_gated: Vec<String> = Vec::new();
    let mut test_gated: Vec<String> = Vec::new();
    for (sf, _) in &parsed {
        let dir = match sf.label.rsplit_once('/') {
            Some((d, name)) => {
                // `foo.rs` declares children in `foo/`; `lib.rs`, `main.rs`
                // and `mod.rs` declare children in their own directory.
                if matches!(name, "lib.rs" | "main.rs" | "mod.rs") {
                    d.to_string()
                } else {
                    format!("{d}/{}", name.trim_end_matches(".rs"))
                }
            }
            None => String::new(),
        };
        for m in sf.mod_decls() {
            for child in [
                format!("{dir}/{}.rs", m.name),
                format!("{dir}/{}/mod.rs", m.name),
            ] {
                if m.gates.telemetry {
                    telemetry_gated.push(child.clone());
                }
                if m.gates.test {
                    test_gated.push(child);
                }
            }
        }
    }
    parsed.retain(|(sf, _)| !test_gated.contains(&sf.label));
    for (sf, ruleset) in &mut parsed {
        if telemetry_gated.contains(&sf.label) {
            ruleset.telemetry_hygiene = false;
        }
    }

    // Lint per crate so the call-graph pass sees each crate whole.
    let mut groups: BTreeMap<String, Vec<(SourceFile, RuleSet)>> = BTreeMap::new();
    for (sf, ruleset) in parsed {
        groups
            .entry(crate_key(&sf.label))
            .or_default()
            .push((sf, ruleset));
    }
    let mut checked = 0usize;
    for group in groups.values() {
        checked += group.len();
        findings.extend(lint_files(group));
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report(checked, &findings, format)
}

/// The crate a workspace-relative path belongs to (its top two path
/// components), the grouping unit for the call-graph pass.
fn crate_key(label: &str) -> String {
    let mut parts = label.split('/');
    match (parts.next(), parts.next()) {
        (Some(a), Some(b)) if b.contains('.') => a.to_string(),
        (Some(a), Some(b)) => format!("{a}/{b}"),
        (Some(a), None) => a.to_string(),
        _ => String::new(),
    }
}

/// Lints explicitly named files with every rule enabled.
fn lint_file_args(paths: &[String], format: Format) -> i32 {
    let mut findings = Vec::new();
    for p in paths {
        match std::fs::read_to_string(p) {
            Ok(src) => findings.extend(lint_source(p, &src, &RuleSet::all())),
            Err(e) => findings.push(Finding {
                file: p.clone(),
                line: 0,
                rule: "io-error",
                excerpt: e.to_string(),
            }),
        }
    }
    report(paths.len(), &findings, format)
}

/// Prints findings (if any) and the summary line; returns the exit code.
fn report(checked: usize, findings: &[Finding], format: Format) -> i32 {
    for f in findings {
        match format {
            Format::Plain => println!("{f}"),
            Format::Github => println!(
                "::error file={},line={},title=lcf-lint {}::{}",
                f.file, f.line, f.rule, f.excerpt
            ),
        }
    }
    if findings.is_empty() {
        println!("lcf-lint: {checked} files checked, no findings");
        0
    } else {
        println!(
            "lcf-lint: {} finding(s) in {checked} checked files",
            findings.len()
        );
        1
    }
}

/// Verifies the analyzer against the embedded seeded fixture: every rule
/// family must fire at least once, the call-graph rule must report the
/// helper reached *from* a hot fn, each new rule family must fire exactly
/// once (proving the tagged/gated negative cases are honored), and the
/// allowlisted violations must not fire.
fn self_test() -> i32 {
    let findings = lint_source("fixtures/seeded.rs", SELF_TEST_FIXTURE, &RuleSet::all());
    let mut failures = Vec::new();
    for rule in rules::ALL {
        if !findings.iter().any(|f| f.rule == rule) {
            failures.push(format!("rule `{rule}` did not fire on the seeded fixture"));
        }
    }
    if findings.iter().any(|f| f.excerpt.contains("as u16")) {
        failures.push("allowlisted `as u16` cast fired despite its lint:allow tag".to_string());
    }
    if findings.iter().any(|f| f.rule == rules::BAD_ALLOW_TAG) {
        failures.push("fixture's allow tags were rejected as malformed".to_string());
    }
    if !findings
        .iter()
        .any(|f| f.rule == rules::HOT_PATH_ALLOC && f.excerpt.contains("called from hot"))
    {
        failures.push(
            "call-graph hot-path-alloc did not reach the helper hidden behind a call".to_string(),
        );
    }
    // Exactly one finding per new rule family: the seeded violation fires,
    // the tagged fn / feature-gated use does not.
    for rule in [rules::RNG_STREAM, rules::TELEMETRY_HYGIENE] {
        let n = findings.iter().filter(|f| f.rule == rule).count();
        if n != 1 {
            failures.push(format!(
                "rule `{rule}` fired {n} times on the fixture (expected exactly 1: \
                 the seeded violation, with the negative case suppressed)"
            ));
        }
    }
    if failures.is_empty() {
        println!(
            "lcf-lint self-test: ok ({} findings, all {} rules fired, tags and gates honored)",
            findings.len(),
            rules::ALL.len()
        );
        0
    } else {
        for f in &failures {
            println!("lcf-lint self-test FAILED: {f}");
        }
        for f in &findings {
            println!("  (fixture finding: {f})");
        }
        1
    }
}

/// Maps a workspace-relative path to the rules that govern it.
///
/// * `forbid-unsafe` — every crate root (`src/lib.rs` / `src/main.rs` /
///   `src/bin/*.rs`) across `crates/`, `compat/` and the root package.
/// * `hash-collections` — everything deterministic plus the bench/cli
///   harnesses (report ordering must be stable too): core, sim, fabric,
///   clint, telemetry, hw, bench, cli, rng. (The lint crate itself is
///   exempt: its docs and tests quote rule words illustratively.)
/// * `wall-clock` — deterministic simulation code: core, sim, fabric,
///   clint, telemetry, hw, and the bench harness (bench re-measures live
///   in `bench_guard` and carries scoped tags for it; the compat shims
///   are exempt because `criterion` legitimately measures wall-clock
///   time).
/// * `no-panic` — library code of core, sim, telemetry, fabric, clint
///   and hw.
/// * `truncating-cast` — core, sim and fabric, where narrow casts could
///   silently truncate port indices. (clint and hw pack protocol/RTL
///   fields into fixed-width wire formats and are exempt.)
/// * `hot-path-alloc` — core and sim, where `schedule_into` /
///   `schedule_weighted_into` / `step` and everything they call is the
///   per-slot hot path.
/// * `rng-stream` — the RNG crate and the sim traffic generators, which
///   own the frozen keystream contracts.
/// * `telemetry-hygiene` — every crate that consumes `lcf_telemetry`
///   behind the default-off feature: core, sim, clint, cli. (The
///   telemetry crate itself defines the symbols.)
fn scope_for(label: &str) -> RuleSet {
    let l = label.replace('\\', "/");
    let in_any = |prefixes: &[&str]| prefixes.iter().any(|p| l.starts_with(p));
    let is_crate_root = l.ends_with("src/lib.rs")
        || l.ends_with("src/main.rs")
        || (l.contains("/src/bin/") && l.ends_with(".rs"));
    let deterministic = in_any(&[
        "crates/core/",
        "crates/sim/",
        "crates/fabric/",
        "crates/clint/",
        "crates/telemetry/",
        "crates/hw/",
    ]);
    // The lint crate itself is out of content scope: its docs and tests
    // quote rule words and allow tags illustratively.
    let hash_scope = deterministic || in_any(&["crates/bench/", "crates/cli/", "crates/rng/"]);
    let wall_scope = deterministic || l.starts_with("crates/bench/");
    let no_panic_scope = in_any(&[
        "crates/core/",
        "crates/sim/",
        "crates/telemetry/",
        "crates/fabric/",
        "crates/clint/",
        "crates/hw/",
    ]);
    let cast_scope = in_any(&["crates/core/", "crates/sim/", "crates/fabric/"]);
    let hot_scope = in_any(&["crates/core/", "crates/sim/"]);
    let rng_stream_scope = l.starts_with("crates/rng/") || l == "crates/sim/src/traffic.rs";
    let telemetry_scope = in_any(&[
        "crates/core/",
        "crates/sim/",
        "crates/clint/",
        "crates/cli/",
    ]);
    RuleSet {
        hash_collections: hash_scope,
        wall_clock: wall_scope,
        no_panic: no_panic_scope,
        truncating_cast: cast_scope,
        forbid_unsafe: is_crate_root,
        hot_path_alloc: hot_scope,
        rng_stream: rng_stream_scope,
        telemetry_hygiene: telemetry_scope,
    }
}

/// Finds the workspace root: the manifest dir of this crate is
/// `<root>/crates/lint`, and a run from elsewhere falls back to walking up
/// from the current directory to the first `Cargo.toml` with `[workspace]`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    if let Some(root) = manifest.parent().and_then(Path::parent) {
        if root.join("Cargo.toml").is_file() {
            return root.to_path_buf();
        }
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let is_ws = std::fs::read_to_string(&manifest)
                .map(|s| s.contains("[workspace]"))
                .unwrap_or(false);
            if is_ws {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// Recursively collects `.rs` files, skipping [`SKIP_DIRS`].
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::scope_for;

    /// The reference tier lives on the hot path: `mwm.rs` must sit inside
    /// the `hot-path-alloc` (and the other core-crate) rule scopes, so its
    /// `schedule_weighted_into` is held to the same no-allocation contract
    /// as every production scheduler.
    #[test]
    fn mwm_module_is_in_hot_path_scope() {
        let rules = scope_for("crates/core/src/mwm.rs");
        assert!(rules.hot_path_alloc);
        assert!(rules.no_panic);
        assert!(rules.truncating_cast);
        assert!(rules.hash_collections);
        assert!(rules.wall_clock);
    }

    /// The oracle suite rides along in `crates/core/` path scope (the
    /// hot-path pass itself exempts `#[test]`-gated fns), while the EXT-20
    /// bench bin is outside hot scope but must still forbid `unsafe`.
    #[test]
    fn oracle_tests_and_bench_bins_scope_correctly() {
        assert!(scope_for("crates/core/tests/mwm_oracle.rs").hot_path_alloc);
        let bench = scope_for("crates/bench/src/bin/mwm_rank.rs");
        assert!(!bench.hot_path_alloc);
        assert!(bench.forbid_unsafe, "bins still must forbid unsafe");
    }
}
