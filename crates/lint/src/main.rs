//! The `lcf-lint` binary: walks the workspace and enforces the repo's
//! determinism and robustness rules (see the `lcf_lint` crate docs).
//!
//! Usage:
//!
//! ```text
//! cargo run -p lcf-lint              # lint the whole workspace (scoped rules)
//! cargo run -p lcf-lint -- FILE...   # lint specific files with ALL rules
//! cargo run -p lcf-lint -- --self-test
//! ```
//!
//! Exits non-zero iff any finding is reported (or the self-test fails).

#![forbid(unsafe_code)]

use lcf_lint::{lint_source, rules, Finding, RuleSet};
use std::path::{Path, PathBuf};

/// The seeded-violation fixture, embedded so `--self-test` needs no path
/// guessing. One line per rule, plus a correctly allowlisted line that must
/// NOT fire.
const SELF_TEST_FIXTURE: &str = include_str!("../fixtures/seeded.rs");

/// Directories never linted: build output, VCS metadata, stored baselines,
/// and test-only trees (tests/, benches/, examples/, fixtures/ — the rules
/// target library and binary code).
const SKIP_DIRS: [&str; 7] = [
    "target",
    ".git",
    ".bench-baseline",
    "fixtures",
    "tests",
    "benches",
    "examples",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = if args.iter().any(|a| a == "--self-test") {
        self_test()
    } else if args.is_empty() {
        lint_workspace()
    } else {
        lint_files(&args)
    };
    std::process::exit(code);
}

/// Lints the whole workspace with path-scoped rules. Returns the exit code.
fn lint_workspace() -> i32 {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs_files(&root, &mut files);
    files.sort();

    let mut findings = Vec::new();
    let mut checked = 0usize;
    for path in &files {
        let label = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .display()
            .to_string();
        let ruleset = scope_for(&label);
        if ruleset.is_empty() {
            continue;
        }
        checked += 1;
        match std::fs::read_to_string(path) {
            Ok(src) => findings.extend(lint_source(&label, &src, &ruleset)),
            Err(e) => findings.push(Finding {
                file: label,
                line: 0,
                rule: "io-error",
                excerpt: e.to_string(),
            }),
        }
    }
    report(checked, &findings)
}

/// Lints explicitly named files with every rule enabled.
fn lint_files(paths: &[String]) -> i32 {
    let mut findings = Vec::new();
    for p in paths {
        match std::fs::read_to_string(p) {
            Ok(src) => findings.extend(lint_source(p, &src, &RuleSet::all())),
            Err(e) => findings.push(Finding {
                file: p.clone(),
                line: 0,
                rule: "io-error",
                excerpt: e.to_string(),
            }),
        }
    }
    report(paths.len(), &findings)
}

/// Prints findings (if any) and the summary line; returns the exit code.
fn report(checked: usize, findings: &[Finding]) -> i32 {
    for f in findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("lcf-lint: {checked} files checked, no findings");
        0
    } else {
        println!(
            "lcf-lint: {} finding(s) in {checked} checked files",
            findings.len()
        );
        1
    }
}

/// Verifies the analyzer against the embedded seeded fixture: every content
/// rule must fire at least once, and the allowlisted violation must not.
fn self_test() -> i32 {
    let findings = lint_source("fixtures/seeded.rs", SELF_TEST_FIXTURE, &RuleSet::all());
    let mut failures = Vec::new();
    for rule in rules::ALL {
        if !findings.iter().any(|f| f.rule == rule) {
            failures.push(format!("rule `{rule}` did not fire on the seeded fixture"));
        }
    }
    if findings.iter().any(|f| f.excerpt.contains("as u16")) {
        failures.push("allowlisted `as u16` cast fired despite its lint:allow tag".to_string());
    }
    if findings.iter().any(|f| f.rule == rules::BAD_ALLOW_TAG) {
        failures.push("fixture's allow tag was rejected as malformed".to_string());
    }
    if failures.is_empty() {
        println!(
            "lcf-lint self-test: ok ({} findings, all {} rules fired, allow tag honored)",
            findings.len(),
            rules::ALL.len()
        );
        0
    } else {
        for f in &failures {
            println!("lcf-lint self-test FAILED: {f}");
        }
        for f in &findings {
            println!("  (fixture finding: {f})");
        }
        1
    }
}

/// Maps a workspace-relative path to the rules that govern it.
///
/// * `forbid-unsafe` — every crate root (`src/lib.rs` / `src/main.rs`)
///   across `crates/`, `compat/` and the root package.
/// * `hash-collections`, `wall-clock` — deterministic simulation code:
///   core, sim, fabric, clint, telemetry. (The compat shims are exempt:
///   `criterion` legitimately measures wall-clock time.)
/// * `no-panic` — library code of core, sim and telemetry.
/// * `truncating-cast` — core, sim and fabric, where narrow casts could
///   silently truncate port indices. (clint packs protocol fields into
///   fixed-width wire formats and is exempt.)
/// * `hot-path-alloc` — core and sim, where `schedule_into` /
///   `schedule_weighted_into` / `step` bodies are the per-slot hot path.
fn scope_for(label: &str) -> RuleSet {
    let l = label.replace('\\', "/");
    let is_crate_root = l.ends_with("src/lib.rs") || l.ends_with("src/main.rs");
    let deterministic = [
        "crates/core/",
        "crates/sim/",
        "crates/fabric/",
        "crates/clint/",
        "crates/telemetry/",
    ]
    .iter()
    .any(|p| l.starts_with(p));
    let no_panic_scope = l.starts_with("crates/core/")
        || l.starts_with("crates/sim/")
        || l.starts_with("crates/telemetry/");
    let cast_scope = l.starts_with("crates/core/")
        || l.starts_with("crates/sim/")
        || l.starts_with("crates/fabric/");
    let hot_scope = l.starts_with("crates/core/") || l.starts_with("crates/sim/");
    RuleSet {
        hash_collections: deterministic,
        wall_clock: deterministic,
        no_panic: no_panic_scope,
        truncating_cast: cast_scope,
        forbid_unsafe: is_crate_root,
        hot_path_alloc: hot_scope,
    }
}

/// Finds the workspace root: the manifest dir of this crate is
/// `<root>/crates/lint`, and a run from elsewhere falls back to walking up
/// from the current directory to the first `Cargo.toml` with `[workspace]`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    if let Some(root) = manifest.parent().and_then(Path::parent) {
        if root.join("Cargo.toml").is_file() {
            return root.to_path_buf();
        }
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let is_ws = std::fs::read_to_string(&manifest)
                .map(|s| s.contains("[workspace]"))
                .unwrap_or(false);
            if is_ws {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// Recursively collects `.rs` files, skipping [`SKIP_DIRS`].
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect_rs_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}
