//! Profiling harness for the heavy-traffic fast path: breaks the
//! load-0.99 slot loop into its components (dense matching kernel,
//! traffic generation legacy vs fast, full slot loop per scheduler and
//! backend) so a regression can be attributed to one layer from a single
//! run. All sections run in the same process, so the printed *ratios*
//! are meaningful even on noisy machines where absolute ns are not —
//! the same convention the `sim_heavy` criterion group and `bench_guard`
//! use. The EXPERIMENTS.md "Heavy-traffic fast path" numbers come from
//! here and from the committed `results/BENCH_schedulers.json`.
//!
//! Run with: `cargo run --release --example profile_heavy`

use lcf_switch::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let n = 32usize;

    // 1. Dense schedule_into cost (the load-0.99 steady-state matrix).
    let requests = RequestMatrix::from_pairs(n, (0..n).flat_map(|i| (0..n).map(move |j| (i, j))));
    for kind in ["lcf_central", "lcf_central_rr", "islip", "wfront"] {
        let k = lcf_core::registry::SchedulerKind::from_name(kind).unwrap();
        let mut sched = k.build(n, 4, 11);
        let mut out = Matching::new(n);
        let iters = 200_000u32;
        let start = Instant::now();
        for _ in 0..iters {
            sched.schedule_into(&requests, &mut out);
            std::hint::black_box(out.size());
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        println!("dense schedule_into {kind:<16} {ns:8.1} ns/call");
    }

    // 2. Traffic generation alone at load 0.99, legacy vs fast.
    {
        use lcf_sim::traffic::{Bernoulli, DestPattern, FastBernoulli, Traffic};
        let slots = 1_000_000u64;
        let mut cases: Vec<(&str, Box<dyn Traffic>)> = vec![
            (
                "legacy",
                Box::new(Bernoulli::new(n, 0.99, DestPattern::Uniform)),
            ),
            (
                "fast",
                Box::new(FastBernoulli::new(n, 0.99, DestPattern::Uniform)),
            ),
        ];
        for (label, t) in cases.iter_mut() {
            let mut rng = StdRng::seed_from_u64(1);
            let mut batch = vec![None; n];
            let start = Instant::now();
            let mut acc = 0u64;
            for slot in 0..slots {
                t.arrivals_into(slot, &mut rng, &mut batch);
                for d in batch.iter().flatten() {
                    acc = acc.wrapping_add(*d as u64);
                }
            }
            let ns = start.elapsed().as_nanos() as f64 / slots as f64;
            println!(
                "{label:<6} Bernoulli traffic (n={n}, load .99): {ns:8.1} ns/slot  (acc {acc})"
            );
        }
    }

    // 2b. Scalar-backend reference slot loop (the paper-transliteration
    // legacy path) at load 0.99.
    {
        use lcf_sim::stats::SimStats;
        use lcf_sim::switch::{IqSwitch, QueueMode};
        use lcf_sim::traffic::{Bernoulli, DestPattern};
        let k = lcf_core::registry::SchedulerKind::LcfCentral;
        let sched = k
            .build_with_backend(n, 4, 2, lcf_core::bitkern::Backend::Scalar)
            .0;
        let mut sw = IqSwitch::new(n, sched, QueueMode::Voq { cap: 256 }, 1000);
        let mut traffic = Bernoulli::new(n, 0.99, DestPattern::Uniform);
        let mut rng = StdRng::seed_from_u64(1);
        let mut stats = SimStats::new(n, 0, 4096);
        let slots = 200_000u64;
        let start = Instant::now();
        for slot in 0..slots {
            sw.step(slot, &mut traffic, &mut rng, &mut stats);
        }
        let ns = start.elapsed().as_nanos() as f64 / slots as f64;
        println!("full slot loop scalar-reference lcf_central load .99: {ns:8.1} ns/slot");
    }

    // 3. Full slot loop at load 0.99, legacy vs fast generator.
    for gen in ["legacy", "fast"] {
        for kind in ["lcf_central", "lcf_central_rr", "islip", "wfront"] {
            let k = lcf_core::registry::SchedulerKind::from_name(kind).unwrap();
            use lcf_sim::stats::SimStats;
            use lcf_sim::switch::{IqSwitch, QueueMode};
            use lcf_sim::traffic::{Bernoulli, DestPattern, FastBernoulli, Traffic};
            let mut sw = IqSwitch::new(n, k.build(n, 4, 2), QueueMode::Voq { cap: 256 }, 1000);
            let mut traffic: Box<dyn Traffic> = if gen == "fast" {
                Box::new(FastBernoulli::new(n, 0.99, DestPattern::Uniform))
            } else {
                Box::new(Bernoulli::new(n, 0.99, DestPattern::Uniform))
            };
            let mut rng = StdRng::seed_from_u64(1);
            let mut stats = SimStats::new(n, 0, 4096);
            let slots = 200_000u64;
            let start = Instant::now();
            for slot in 0..slots {
                sw.step(slot, traffic.as_mut(), &mut rng, &mut stats);
            }
            let ns = start.elapsed().as_nanos() as f64 / slots as f64;
            println!("full slot loop {gen:<6} {kind:<16} load .99: {ns:8.1} ns/slot");
        }
    }
}
