//! Fabric routing: realize LCF schedules on a crossbar and a Clos network.
//!
//! The paper's switch model is fabric-agnostic ("a non-blocking switch
//! fabric such as the crossbar switch of Figure 1. Other non-blocking
//! fabrics such as Clos networks are also possible"). This example builds a
//! 64-port switch both ways, drives them with the same LCF schedules, and
//! compares hardware cost.
//!
//! Run with: `cargo run --release --example fabric_routing`

use lcf_switch::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 64;
const SLOTS: usize = 2_000;

fn main() {
    let mut sched = CentralLcf::with_round_robin(N);
    let mut rng = StdRng::seed_from_u64(2002);

    let mut xbar = Crossbar::new(N);
    let clos = ClosNetwork::rearrangeable_for_ports(N);
    println!(
        "{N}-port switch two ways: crossbar ({} crosspoints) vs Clos C({},{},{}) ({} crosspoints)",
        xbar.crosspoints(),
        clos.m,
        clos.k,
        clos.r,
        clos.crosspoints()
    );

    let mut total_connections = 0usize;
    let mut middle_usage = vec![0u64; clos.m];
    for _ in 0..SLOTS {
        let requests = RequestMatrix::random(N, 0.4, &mut rng);
        let matching = sched.schedule(&requests);
        total_connections += matching.size();

        // Crossbar: direct configuration, conflict-free by construction.
        xbar.configure(&matching);
        assert!(xbar.check().is_ok());

        // Clos: the edge-coloring router finds middle switches.
        let route = clos
            .route(&matching)
            .expect("rearrangeable Clos routes any matching");
        assert!(route.verify(), "no internal link may be used twice");
        for &(_, middle, _) in route.assignments() {
            middle_usage[middle] += 1;
        }
    }

    println!(
        "routed {SLOTS} schedules / {total_connections} connections through both fabrics with zero conflicts"
    );
    println!("middle-switch load balance (connections per middle switch):");
    for (m, used) in middle_usage.iter().enumerate() {
        let bar = "#".repeat((used / 4_000).max(1) as usize);
        println!("  middle {m}: {used:>8} {bar}");
    }
    let max = *middle_usage.iter().max().unwrap() as f64;
    let min = *middle_usage.iter().min().unwrap() as f64;
    println!(
        "imbalance max/min = {:.2} (the router spreads load without trying to)",
        max / min
    );
    println!(
        "\ncrossbar wins below ~32 ports; at {N} ports the Clos saves {:.1}% of the crosspoints",
        100.0 * (1.0 - clos.crosspoints() as f64 / xbar.crosspoints() as f64)
    );
}
