//! Real-time multicast over Clint's precalculated schedule (Sec. 4.3).
//!
//! Scenario: host 0 distributes a video stream to three receivers. It
//! pre-schedules a multicast connection in every cycle's config packet, so
//! its stream gets hard slot guarantees; twelve other hosts offer heavy
//! best-effort background traffic that the LCF scheduler fits around the
//! reservation.
//!
//! Run with: `cargo run --release --example realtime_multicast`

use lcf_switch::clint::packets::ConfigPacket;
use lcf_switch::clint::pipeline::BulkPipeline;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 16;
const STREAMER: usize = 0;
const RECEIVERS: [usize; 3] = [5, 9, 13];
const SLOTS: u64 = 5_000;

fn main() {
    let mut pipe = BulkPipeline::new(N);
    let mut rng = StdRng::seed_from_u64(42);

    // Background hosts keep a simple one-deep request set per slot.
    let mut stream_transfers = 0u64;
    let mut background_transfers = 0u64;
    let mut stream_gaps = 0u64;

    let receiver_mask: u16 = RECEIVERS.iter().map(|&r| 1u16 << r).sum();

    for slot in 0..SLOTS {
        let configs: Vec<Option<ConfigPacket>> = (0..N)
            .map(|i| {
                if i == STREAMER {
                    // The stream pre-claims its receivers every cycle.
                    Some(ConfigPacket {
                        pre: receiver_mask,
                        ben: 0xFFFF,
                        qen: 0xFFFF,
                        ..Default::default()
                    })
                } else {
                    // Background: request 3 random targets (heavy load).
                    let mut req = 0u16;
                    for _ in 0..3 {
                        req |= 1 << rng.gen_range(0..N);
                    }
                    Some(ConfigPacket {
                        req,
                        ben: 0xFFFF,
                        qen: 0xFFFF,
                        ..Default::default()
                    })
                }
            })
            .collect();

        let events = pipe.step(&configs);

        // Count what traversed the switch this slot (scheduled last slot).
        if slot > 0 {
            let stream_hits = events
                .transfers
                .iter()
                .filter(|&&(i, _)| i == STREAMER)
                .count();
            if stream_hits == RECEIVERS.len() {
                stream_transfers += 1;
            } else {
                stream_gaps += 1;
            }
            background_transfers += events
                .transfers
                .iter()
                .filter(|&&(i, _)| i != STREAMER)
                .count() as u64;
        }
    }

    let carried_slots = SLOTS - 1;
    println!("Clint real-time multicast demo ({N} hosts, {SLOTS} slots)");
    println!(
        "  stream: host {STREAMER} -> hosts {:?} (precalculated multicast)",
        RECEIVERS
    );
    println!(
        "  stream slots with all {} branches delivered: {stream_transfers}/{carried_slots}",
        RECEIVERS.len()
    );
    println!("  stream slots missed: {stream_gaps}");
    println!(
        "  background transfers carried around the reservation: {background_transfers} ({:.2} per slot of {} free outputs)",
        background_transfers as f64 / carried_slots as f64,
        N - RECEIVERS.len()
    );

    assert_eq!(
        stream_gaps, 0,
        "a precalculated schedule must never lose its slot"
    );
    println!("\nhard real-time guarantee held: the reservation never missed a slot.");
}
