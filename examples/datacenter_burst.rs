//! Bursty datacenter-style traffic: on-off flows and a hotspot output.
//!
//! The paper's Fig. 12 uses smooth Bernoulli traffic; real cluster traffic
//! arrives in bursts and often converges on one hot node (incast). This
//! example stresses the LCF schedulers with both patterns and compares them
//! against PIM and iSLIP.
//!
//! Run with: `cargo run --release --example datacenter_burst`

use lcf_switch::prelude::*;

fn run_case(name: &str, pattern: DestPattern, traffic: TrafficKind, load: f64) {
    let contenders = [
        SchedulerKind::LcfCentralRr,
        SchedulerKind::LcfDistRr,
        SchedulerKind::Pim,
        SchedulerKind::Islip,
    ];
    let configs: Vec<SimConfig> = contenders
        .iter()
        .map(|&kind| SimConfig {
            model: ModelKind::Scheduler(kind),
            load,
            pattern: pattern.clone(),
            traffic: traffic.clone(),
            warmup_slots: 20_000,
            measure_slots: 80_000,
            ..SimConfig::paper_default()
        })
        .collect();

    println!("\n== {name} (load {load}) ==");
    println!(
        "{:<16} {:>12} {:>9} {:>12} {:>8}",
        "scheduler", "mean delay", "p99", "throughput", "drops"
    );
    for r in sweep(&configs) {
        println!(
            "{:<16} {:>9.2} sl {:>6} sl {:>12.3} {:>8}",
            r.model,
            r.mean_latency(),
            r.p99_latency,
            r.throughput,
            r.dropped
        );
    }
}

fn main() {
    println!("16-port switch under datacenter-style traffic");

    // Smooth baseline for reference.
    run_case(
        "uniform Bernoulli (paper's workload)",
        DestPattern::Uniform,
        TrafficKind::Bernoulli,
        0.9,
    );

    // Long on-off bursts: each flow sends 16-packet trains to one target.
    run_case(
        "bursty on-off, mean burst 16",
        DestPattern::Uniform,
        TrafficKind::Bursty { mean_burst: 16.0 },
        0.8,
    );

    // Incast: 30% of all traffic converges on node 0.
    run_case(
        "hotspot (30% of traffic to node 0)",
        DestPattern::Hotspot {
            hot: 0,
            fraction: 0.3,
        },
        TrafficKind::Bernoulli,
        0.7,
    );
}
