//! Scheduler face-off: all nine Fig. 12 models at one load point.
//!
//! Run with: `cargo run --release --example scheduler_faceoff [load]`
//! (default load 0.9 — the region where the schedulers separate).

use lcf_switch::prelude::*;

fn main() {
    let load: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.9);
    assert!((0.0..=1.0).contains(&load), "load must be in [0,1]");

    let configs: Vec<SimConfig> = ModelKind::figure12_lineup()
        .into_iter()
        .map(|model| SimConfig {
            model,
            load,
            warmup_slots: 20_000,
            measure_slots: 100_000,
            ..SimConfig::paper_default()
        })
        .collect();

    println!(
        "16-port switch, uniform Bernoulli traffic at load {load}, VOQ=256, PQ=1000, 4 iterations"
    );
    println!(
        "{:<16} {:>12} {:>10} {:>12} {:>10} {:>8}",
        "model", "mean delay", "p99", "throughput", "jain", "drops"
    );

    let reports = sweep(&configs);
    let outbuf = reports
        .iter()
        .find(|r| r.model == "outbuf")
        .expect("outbuf is in the lineup")
        .mean_latency();

    for r in &reports {
        println!(
            "{:<16} {:>9.2} sl {:>7} sl {:>12.3} {:>10.3} {:>8}",
            r.model,
            r.mean_latency(),
            r.p99_latency,
            r.throughput,
            r.jain_index,
            r.dropped
        );
    }

    println!("\nrelative to output buffering (Fig. 12b at this load):");
    for r in &reports {
        let bar_len = ((r.mean_latency() / outbuf).min(30.0) * 2.0) as usize;
        println!(
            "{:<16} {:>6.2}x {}",
            r.model,
            r.mean_latency() / outbuf,
            "#".repeat(bar_len)
        );
    }
}
