//! Quickstart: schedule a switch by hand, then simulate one.
//!
//! Run with: `cargo run --example quickstart`

use lcf_switch::prelude::*;

fn main() {
    // --- 1. One scheduling cycle, by hand -------------------------------
    // The 4x4 request pattern of the paper's Fig. 3: rows are input ports
    // (initiators), columns are output ports (targets).
    let requests = RequestMatrix::from_pairs(
        4,
        [
            (0, 1),
            (0, 2), // I0 has packets for T1 and T2
            (1, 0),
            (1, 2),
            (1, 3), // I1 for T0, T2, T3
            (2, 0),
            (2, 2),
            (2, 3), // I2 for T0, T2, T3
            (3, 1), // I3 only for T1
        ],
    );

    println!("request matrix (1 = packet waiting):");
    for i in 0..4 {
        let row: String = (0..4)
            .map(|j| if requests.get(i, j) { '1' } else { '.' })
            .collect();
        println!("  I{i}: {row}   (NRQ = {})", requests.nrq(i));
    }

    let mut lcf = CentralLcf::with_round_robin(4);
    lcf.advance_pointer(); // start from the diagonal shown in Fig. 3
    let matching = lcf.schedule(&requests);

    println!("\nLCF schedule (least choices first, round-robin diagonal):");
    for (i, j) in matching.pairs() {
        println!("  I{i} -> T{j}");
    }
    assert!(matching.is_valid_for(&requests));
    println!(
        "  {} of 4 outputs busy — a perfect matching for this pattern\n",
        matching.size()
    );

    // --- 2. The same scheduler inside a simulated switch ----------------
    let cfg = SimConfig {
        model: ModelKind::Scheduler(SchedulerKind::LcfCentralRr),
        load: 0.85,
        warmup_slots: 5_000,
        measure_slots: 20_000,
        ..SimConfig::paper_default()
    };
    println!(
        "simulating {}-port switch, {} scheduler, load {} ...",
        cfg.n,
        cfg.model.name(),
        cfg.load
    );
    let report = run_sim(&cfg);
    println!(
        "  mean delay {:.2} slots, p99 {} slots, throughput {:.3}, drops {}",
        report.mean_latency(),
        report.p99_latency,
        report.throughput,
        report.dropped
    );

    // --- 3. What the hardware would cost ---------------------------------
    let gates = lcf_switch::hw::gates::GateModel::new(16);
    let timing = lcf_switch::hw::timing::TimingModel::paper(16);
    println!(
        "\n16-port central LCF in hardware: {} gates, {} registers, {} cycles/schedule ({:.0} ns at 66 MHz)",
        gates.total().gates,
        gates.total().regs,
        timing.total_cycles(),
        timing.cycles_to_ns(timing.total_cycles())
    );
}
