//! Source-compatible subset of `criterion` for offline builds.
//!
//! A wall-clock micro-benchmark harness implementing the API surface the
//! workspace's benches use: [`Criterion`], [`criterion_group!`],
//! [`criterion_main!`], benchmark groups, [`BenchmarkId`], [`Throughput`]
//! and `Bencher::iter`. Differences from upstream:
//!
//! * measurement is simple adaptive timing (geometric warm-up to calibrate,
//!   then fixed-duration samples; min/median/max reported),
//! * `--test` (what `cargo test` passes to bench targets) runs every
//!   routine exactly once, so test runs stay fast,
//! * setting `CRITERION_JSON=<path>` writes all results as JSON — used to
//!   commit `BENCH_schedulers.json` baselines,
//! * the first non-flag CLI argument filters benchmarks by substring.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-per-iteration declaration (scales reported throughput).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from a parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Full id, `group/function/parameter`.
    pub id: String,
    /// Fastest sample, in ns per iteration.
    pub ns_min: f64,
    /// Median sample, in ns per iteration.
    pub ns_median: f64,
    /// Slowest sample, in ns per iteration.
    pub ns_max: f64,
    /// Declared elements per iteration, if any.
    pub elements: Option<u64>,
}

/// The harness entry point; one per process, created by [`criterion_main!`].
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    sample_ms: u64,
    samples: usize,
    results: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let test_mode = args.iter().any(|a| a == "--test");
        let filter = args
            .iter()
            .find(|a| !a.starts_with('-'))
            .map(|s| s.to_string());
        let sample_ms = std::env::var("CRITERION_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(50);
        let samples = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(11);
        Criterion {
            filter,
            test_mode,
            sample_ms,
            samples,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        self.run_one(id.into().id, None, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_time: Duration::from_millis(self.sample_ms),
            samples: self.samples,
            record: None,
        };
        f(&mut bencher);
        let Some((ns_min, ns_median, ns_max)) = bencher.record else {
            return; // routine never called iter (or test mode)
        };
        let elements = match throughput {
            Some(Throughput::Elements(e)) => Some(e),
            _ => None,
        };
        let rate = elements
            .map(|e| {
                format!(
                    "  ({:.1} Melem/s)",
                    e as f64 * 1e9 / ns_median / 1_000_000.0
                )
            })
            .unwrap_or_default();
        println!(
            "{id:<48} time: [{} {} {}]{rate}",
            fmt_ns(ns_min),
            fmt_ns(ns_median),
            fmt_ns(ns_max)
        );
        self.results.push(BenchRecord {
            id,
            ns_min,
            ns_median,
            ns_max,
            elements,
        });
    }

    /// All measurements so far (used by JSON emission and tests).
    pub fn results(&self) -> &[BenchRecord] {
        &self.results
    }

    /// Prints the run summary and honors `CRITERION_JSON`.
    pub fn final_summary(&self) {
        if self.test_mode {
            println!("criterion (shim): test mode, every routine ran once");
            return;
        }
        if let Ok(path) = std::env::var("CRITERION_JSON") {
            match std::fs::write(&path, results_to_json(&self.results)) {
                Ok(()) => println!("criterion (shim): wrote {path}"),
                Err(e) => eprintln!("criterion (shim): cannot write {path}: {e}"),
            }
        }
    }
}

/// Serializes records as a stable, diffable JSON document.
pub fn results_to_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("{\n  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        let elements = r
            .elements
            .map(|e| e.to_string())
            .unwrap_or_else(|| "null".into());
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"ns_min\": {:.2}, \"ns_median\": {:.2}, \"ns_max\": {:.2}, \"elements\": {}}}{}\n",
            r.id.replace('"', "\\\""),
            r.ns_min,
            r.ns_median,
            r.ns_max,
            elements,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a routine under `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        self.criterion.run_one(full, self.throughput, f);
        self
    }

    /// Benchmarks a routine that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        self.criterion
            .run_one(full, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] does the measuring.
pub struct Bencher {
    test_mode: bool,
    sample_time: Duration,
    samples: usize,
    record: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Measures `routine`, storing (min, median, max) ns per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }

        // Geometric warm-up until one batch takes long enough to time
        // reliably; this also calibrates the batch size.
        let mut batch: u64 = 1;
        let mut elapsed;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || batch >= (1 << 30) {
                break;
            }
            batch *= 2;
        }
        let per_iter_ns = (elapsed.as_nanos() as f64 / batch as f64).max(0.1);
        let iters_per_sample =
            ((self.sample_time.as_nanos() as f64 / per_iter_ns).ceil() as u64).max(1);

        let mut samples_ns: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters_per_sample {
                    black_box(routine());
                }
                start.elapsed().as_nanos() as f64 / iters_per_sample as f64
            })
            .collect();
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let min = samples_ns[0];
        let median = samples_ns[samples_ns.len() / 2];
        let max = samples_ns[samples_ns.len() - 1];
        self.record = Some((min, median, max));
    }
}

/// Bundles bench functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Defines `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $( $group(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            filter: None,
            test_mode: false,
            sample_ms: 1,
            samples: 3,
            results: Vec::new(),
        }
    }

    #[test]
    fn measures_and_records() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_function(BenchmarkId::new("f", "p"), |b| {
            b.iter(|| black_box(2u64).wrapping_mul(3))
        });
        group.finish();
        assert_eq!(c.results().len(), 1);
        let r = &c.results()[0];
        assert_eq!(r.id, "g/f/p");
        assert!(r.ns_min <= r.ns_median && r.ns_median <= r.ns_max);
        assert!(r.ns_median > 0.0);
        assert_eq!(r.elements, Some(4));
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = quick();
        c.filter = Some("nomatch".into());
        c.bench_function("other", |b| b.iter(|| 1u8));
        assert!(c.results().is_empty());
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = quick();
        c.test_mode = true;
        let mut count = 0u32;
        c.bench_function("once", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        assert_eq!(count, 1);
        assert!(c.results().is_empty());
    }

    #[test]
    fn json_is_well_formed_enough() {
        let records = vec![BenchRecord {
            id: "a/b".into(),
            ns_min: 1.0,
            ns_median: 2.0,
            ns_max: 3.0,
            elements: None,
        }];
        let json = results_to_json(&records);
        assert!(json.contains("\"id\": \"a/b\""));
        assert!(json.contains("\"elements\": null"));
        assert!(json.ends_with("]\n}\n"));
    }
}
