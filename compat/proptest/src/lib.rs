//! Source-compatible subset of `proptest` for offline builds.
//!
//! Implements the API surface this workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, [`arbitrary::any`],
//! range strategies, [`collection::vec`], [`option::of`],
//! [`sample::select`], [`prop_oneof!`] and [`ProptestConfig`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case prints its generated inputs and the
//!   case number; the per-test RNG is deterministically seeded (from the
//!   test name, or `PROPTEST_SEED`), so every failure reproduces exactly.
//! * Strategies are re-instantiated per case (they are pure constructors in
//!   this codebase, so behaviour is identical).
//! * `PROPTEST_CASES` overrides the configured case count.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use test_runner::ProptestConfig;

/// Strategy core: the value-generation trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating test values.
    pub trait Strategy {
        /// The generated value type.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among type-erased alternatives ([`prop_oneof!`]).
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        /// Builds a union; panics if `alternatives` is empty.
        pub fn new(alternatives: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!alternatives.is_empty(), "prop_oneof! needs an alternative");
            Union(alternatives)
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` — whole-domain strategies.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Debug + Sized {
        /// Draws one uniformly distributed value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specifications accepted by [`vec`].
    pub trait IntoSizeRange {
        /// Inclusive (min, max) lengths.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.min == self.max {
                self.min
            } else {
                self.min + rng.below((self.max - self.min + 1) as u64) as usize
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `size` values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }
}

/// Option strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // 3-in-4 Some, like upstream's default weighting.
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `None` a quarter of the time, otherwise `Some` of the inner value.
    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

/// Sampling strategies.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;

    /// Strategy returned by [`select`].
    pub struct Select<T>(Vec<T>);

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Uniform choice from a non-empty vector.
    pub fn select<T: Clone + Debug>(choices: Vec<T>) -> Select<T> {
        assert!(!choices.is_empty(), "select requires at least one choice");
        Select(choices)
    }
}

/// Test execution: configuration, RNG and failure reporting.
pub mod test_runner {
    use lcf_rng::ChaCha8Rng;

    /// Per-test configuration (the `cases` knob is the only one we use).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Effective case count: `PROPTEST_CASES` overrides the config.
    pub fn case_count(config: &ProptestConfig) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.cases)
    }

    /// The deterministic per-test generator.
    ///
    /// Seeded from an FNV-1a hash of the test name (override with
    /// `PROPTEST_SEED`), so a failing case reproduces on every run.
    pub struct TestRng(ChaCha8Rng);

    impl TestRng {
        /// Creates the RNG for the named test.
        pub fn for_test(name: &str) -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| fnv1a(name.as_bytes()));
            TestRng(ChaCha8Rng::from_u64_seed(seed))
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            if bound.is_power_of_two() {
                return self.next_u64() & (bound - 1);
            }
            let threshold = bound.wrapping_neg() % bound;
            loop {
                let m = (self.next_u64() as u128) * (bound as u128);
                if (m as u64) >= threshold {
                    return (m >> 64) as u64;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// 64-bit FNV-1a.
    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Prints the generated inputs of a case if its body panics.
    pub struct CaseGuard {
        case: u32,
        inputs: String,
        armed: bool,
    }

    impl CaseGuard {
        /// Arms a guard describing the current case.
        pub fn new(case: u32, inputs: String) -> Self {
            CaseGuard {
                case,
                inputs,
                armed: true,
            }
        }

        /// Disarms the guard: the case passed.
        pub fn passed(mut self) {
            self.armed = false;
        }
    }

    impl Drop for CaseGuard {
        fn drop(&mut self) {
            if self.armed && std::thread::panicking() {
                eprintln!(
                    "proptest case #{} failed with inputs:\n{}(set PROPTEST_SEED to reproduce a different stream)",
                    self.case, self.inputs
                );
            }
        }
    }
}

/// Everything a test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. See the crate docs for semantics.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __cases = $crate::test_runner::case_count(&__config);
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                let __guard = $crate::test_runner::CaseGuard::new(
                    __case,
                    [ $( format!("  {} = {:?}\n", stringify!($arg), &$arg) ),+ ].concat(),
                );
                { $body }
                __guard.passed();
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// `assert!` under the name property tests use.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under the name property tests use.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under the name property tests use.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($s) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_test("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let v = crate::strategy::Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = crate::strategy::Strategy::generate(&(0.0f64..=1.0), &mut rng);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = TestRng::for_test("vec_lengths_respect_bounds");
        let strat = crate::collection::vec(any::<bool>(), 1..5);
        for _ in 0..500 {
            let len = crate::strategy::Strategy::generate(&strat, &mut rng).len();
            assert!((1..5).contains(&len));
        }
        let exact = crate::collection::vec(any::<u8>(), 64usize);
        assert_eq!(
            crate::strategy::Strategy::generate(&exact, &mut rng).len(),
            64
        );
    }

    #[test]
    fn select_only_picks_choices() {
        let mut rng = TestRng::for_test("select_only_picks_choices");
        let strat = crate::sample::select(vec![2usize, 3, 5]);
        for _ in 0..200 {
            let v = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!([2, 3, 5].contains(&v));
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let mut rng = TestRng::for_test("option_of_produces_both_variants");
        let strat = crate::option::of(0usize..4);
        let vals: Vec<Option<usize>> = (0..200)
            .map(|_| crate::strategy::Strategy::generate(&strat, &mut rng))
            .collect();
        assert!(vals.iter().any(|v| v.is_none()));
        assert!(vals.iter().any(|v| v.is_some()));
    }

    // The macro itself, exercised end to end.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_generates_and_asserts(
            x in 0usize..10,
            pair in (0u8..4, any::<bool>()),
            v in crate::collection::vec(0usize..100, 0..5),
        ) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 4);
            prop_assert_eq!(v.iter().filter(|&&e| e >= 100).count(), 0);
        }
    }

    proptest! {
        #[test]
        fn oneof_union_works(kind in prop_oneof![Just(1usize), Just(2usize)]) {
            prop_assert!(kind == 1 || kind == 2);
        }
    }
}
