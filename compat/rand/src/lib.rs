//! Source-compatible subset of the `rand` crate backed by [`lcf_rng`].
//!
//! The build environment is offline, so the real `rand` cannot be fetched.
//! This shim implements exactly the surface the workspace uses — the [`Rng`]
//! extension trait (`gen_range`, `gen_bool`, `gen`), [`SeedableRng`],
//! [`rngs::StdRng`] and [`seq::SliceRandom`] — with one deliberate
//! difference from upstream: **`StdRng` is [`lcf_rng::ChaCha8Rng`]**, whose
//! stream is frozen and golden-tested, so seeded runs are reproducible
//! forever (upstream `StdRng` explicitly reserves the right to change
//! algorithm between releases).
//!
//! Value derivation is also frozen and documented per method; see
//! [`Rng::gen_range`] and [`Rng::gen_bool`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random bits: the object-safe core trait.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<const ROUNDS: u32> RngCore for lcf_rng::ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        lcf_rng::ChaChaRng::next_u32(self)
    }

    fn next_u64(&mut self) -> u64 {
        lcf_rng::ChaChaRng::next_u64(self)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        lcf_rng::ChaChaRng::fill_bytes(self, dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from their whole domain via
/// [`Rng::gen`] (the shim's version of upstream's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
                   usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   i64 => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision: `(u64 >> 11) * 2⁻⁵³`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts. Generic over the element type
/// (rather than an associated type) so integer literals in a range unify
/// with the type the surrounding expression expects, as with upstream rand.
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform `u64` in `[0, bound)` without modulo bias, using
/// Lemire's widening-multiply rejection method. `bound` must be nonzero.
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Fast path for power-of-two bounds: a mask is exact and unbiased.
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let m = (rng.next_u64() as u128) * (bound as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let unit = f64::sample_standard(rng);
        lo + unit * (hi - lo)
    }
}

/// The user-facing extension trait, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value over `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        f64::sample_standard(self) < p
    }

    /// Uniform value over `T`'s whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed (frozen derivation; see
    /// [`lcf_rng::ChaChaRng::from_u64_seed`]).
    fn seed_from_u64(seed: u64) -> Self;
}

impl<const ROUNDS: u32> SeedableRng for lcf_rng::ChaChaRng<ROUNDS> {
    fn seed_from_u64(seed: u64) -> Self {
        lcf_rng::ChaChaRng::from_u64_seed(seed)
    }
}

/// Concrete generator types.
pub mod rngs {
    /// The standard seeded generator of this workspace.
    ///
    /// Unlike upstream `rand`, this is **defined** to be
    /// [`lcf_rng::ChaCha8Rng`] — an explicitly named, frozen algorithm — so
    /// a stored seed reproduces a run bit-identically on any build.
    pub type StdRng = lcf_rng::ChaCha8Rng;

    /// Alias kept for call sites that want a small fast generator; same
    /// ChaCha8 core (speed is irrelevant next to determinism here).
    pub type SmallRng = lcf_rng::ChaCha8Rng;
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (the subset of upstream's `SliceRandom` we use).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates, back to front).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..400 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "seen = {seen:?}");
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 5];
        let draws = 50_000;
        for _ in 0..draws {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        for &c in &counts {
            // Expected 10,000; 6 sigma ≈ ±537.
            assert!((9_400..10_600).contains(&c), "counts = {counts:?}");
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }

    #[test]
    #[should_panic(expected = "probability outside")]
    fn gen_bool_rejects_bad_probability() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_bool(1.5);
    }

    #[test]
    fn unit_float_is_half_open() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        // With 20 elements an identity shuffle is astronomically unlikely.
        assert_ne!(v, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        let av: Vec<usize> = (0..50).map(|_| a.gen_range(0..1000)).collect();
        let bv: Vec<usize> = (0..50).map(|_| b.gen_range(0..1000)).collect();
        assert_eq!(av, bv);
    }

    #[test]
    fn trait_objects_work_through_mut_ref() {
        fn takes_impl(rng: &mut impl Rng) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let _ = takes_impl(&mut rng);
    }
}
